//! Deadline vectors.
//!
//! In the paper, every scheduling decision — protecting `old` instructions
//! during `merge`, delaying idle slots, pinning loop-carried constraints —
//! is expressed by assigning *completion deadlines* to nodes and
//! re-running the Rank Algorithm. This module provides the deadline
//! container plus the "artificially large deadline" convention of Section
//! 2.1 (`D`, chosen large enough to introduce no constraint).

use asched_graph::{DepGraph, NodeId, NodeSet};

/// Per-node completion deadlines (indexed by `NodeId::index()`).
///
/// Deadlines are `i64`: they are decremented during idle-slot processing
/// and re-based during `chop`, and may transiently become small; a
/// deadline below a node's execution time makes the instance infeasible.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Deadlines {
    d: Vec<i64>,
    horizon: i64,
}

impl Deadlines {
    /// Deadlines that constrain nothing: every node of `mask` gets the
    /// *horizon* `D = total work + total latency + 1`, which exceeds any
    /// schedule the greedy scheduler can produce (it never idles longer
    /// than the largest latency in a row).
    pub fn unbounded(g: &DepGraph, mask: &NodeSet) -> Self {
        let total_work = g.total_work(mask) as i64;
        let total_lat: i64 = mask
            .iter()
            .flat_map(|id| g.out_edges_li(id))
            .filter(|e| mask.contains(e.dst))
            .map(|e| e.latency as i64)
            .sum();
        let horizon = total_work + total_lat + 1;
        let mut d = vec![horizon; g.len()];
        for (i, v) in d.iter_mut().enumerate() {
            if !mask.contains(NodeId(i as u32)) {
                *v = i64::MAX;
            }
        }
        Deadlines { d, horizon }
    }

    /// Uniform deadline `val` for every node of `mask`.
    pub fn uniform(g: &DepGraph, mask: &NodeSet, val: i64) -> Self {
        let mut d = vec![i64::MAX; g.len()];
        for id in mask.iter() {
            d[id.index()] = val;
        }
        Deadlines { d, horizon: val }
    }

    /// The horizon value used for unconstrained nodes.
    #[inline]
    pub fn horizon(&self) -> i64 {
        self.horizon
    }

    /// Deadline of `id`.
    #[inline]
    pub fn get(&self, id: NodeId) -> i64 {
        self.d[id.index()]
    }

    /// Set the deadline of `id`.
    #[inline]
    pub fn set(&mut self, id: NodeId, val: i64) {
        self.d[id.index()] = val;
    }

    /// Lower the deadline of `id` to `val` if `val` is tighter.
    #[inline]
    pub fn tighten(&mut self, id: NodeId, val: i64) {
        let slot = &mut self.d[id.index()];
        *slot = (*slot).min(val);
    }

    /// Set every node of `mask` to `val` (e.g. "all `new` nodes get
    /// deadline `T`" in `merge`).
    pub fn set_all(&mut self, mask: &NodeSet, val: i64) {
        for id in mask.iter() {
            self.d[id.index()] = val;
        }
    }

    /// Lower every node of `mask` to at most `val` (used after the first
    /// rank run: "decrement every deadline by `D - T`", which for
    /// uniform-`D` deadlines is the same as clamping to the makespan `T`).
    pub fn tighten_all(&mut self, mask: &NodeSet, val: i64) {
        for id in mask.iter() {
            self.tighten(id, val);
        }
    }

    /// Add `delta` to every node of `mask` (used by `merge` when deadlines
    /// must be uniformly relaxed, and by `chop` with a negative delta when
    /// re-basing a suffix to time zero).
    pub fn shift_all(&mut self, mask: &NodeSet, delta: i64) {
        for id in mask.iter() {
            let slot = &mut self.d[id.index()];
            if *slot != i64::MAX {
                *slot += delta;
            }
        }
    }

    /// View as a slice for [`asched_graph::validate::validate_schedule`].
    #[inline]
    pub fn as_slice(&self) -> &[i64] {
        &self.d
    }

    /// Snapshot the per-node deadlines into `buf` (a reusable scratch
    /// buffer) without allocating once `buf` has capacity.
    ///
    /// The horizon is *not* snapshotted: the idle-slot loops that use
    /// this only edit values via [`set`](Self::set) /
    /// [`tighten`](Self::tighten) between a save and its matching
    /// [`restore_from`](Self::restore_from), so the vector alone
    /// captures the whole mutable state.
    #[inline]
    pub fn save_into(&self, buf: &mut Vec<i64>) {
        buf.clear();
        buf.extend_from_slice(&self.d);
    }

    /// Restore deadlines previously saved with
    /// [`save_into`](Self::save_into).
    #[inline]
    pub fn restore_from(&mut self, buf: &[i64]) {
        debug_assert_eq!(buf.len(), self.d.len());
        self.d.clear();
        self.d.extend_from_slice(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::BlockId;

    fn graph() -> DepGraph {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 2);
        g
    }

    #[test]
    fn unbounded_exceeds_any_schedule() {
        let g = graph();
        let d = Deadlines::unbounded(&g, &g.all_nodes());
        // total work 2 + total latency 2 + 1 = 5
        assert_eq!(d.horizon(), 5);
        assert_eq!(d.get(NodeId(0)), 5);
    }

    #[test]
    fn unbounded_ignores_unmasked_edges() {
        let g = graph();
        let mut mask = NodeSet::new(g.len());
        mask.insert(NodeId(0));
        let d = Deadlines::unbounded(&g, &mask);
        assert_eq!(d.horizon(), 2); // work 1 + latency 0 + 1
        assert_eq!(d.get(NodeId(1)), i64::MAX);
    }

    #[test]
    fn tighten_only_lowers() {
        let g = graph();
        let mut d = Deadlines::uniform(&g, &g.all_nodes(), 10);
        d.tighten(NodeId(0), 12);
        assert_eq!(d.get(NodeId(0)), 10);
        d.tighten(NodeId(0), 3);
        assert_eq!(d.get(NodeId(0)), 3);
    }

    #[test]
    fn set_all_and_shift_all() {
        let g = graph();
        let mut d = Deadlines::uniform(&g, &g.all_nodes(), 10);
        let mask = g.all_nodes();
        d.set_all(&mask, 7);
        assert_eq!(d.get(NodeId(1)), 7);
        d.shift_all(&mask, -3);
        assert_eq!(d.get(NodeId(0)), 4);
        d.shift_all(&mask, 5);
        assert_eq!(d.get(NodeId(0)), 9);
    }

    #[test]
    fn save_and_restore_round_trip() {
        let g = graph();
        let mut d = Deadlines::uniform(&g, &g.all_nodes(), 10);
        let mut buf = Vec::new();
        d.save_into(&mut buf);
        d.set(NodeId(0), 3);
        d.tighten(NodeId(1), 1);
        assert_eq!(d.get(NodeId(0)), 3);
        d.restore_from(&buf);
        assert_eq!(d.get(NodeId(0)), 10);
        assert_eq!(d.get(NodeId(1)), 10);
        assert_eq!(d.horizon(), 10);
    }

    #[test]
    fn shift_all_skips_infinite() {
        let g = graph();
        let mut mask = NodeSet::new(g.len());
        mask.insert(NodeId(0));
        let mut d = Deadlines::uniform(&g, &mask, 10);
        d.shift_all(&g.all_nodes(), 1);
        assert_eq!(d.get(NodeId(1)), i64::MAX);
        assert_eq!(d.get(NodeId(0)), 11);
    }
}
