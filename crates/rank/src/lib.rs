//! The Rank Algorithm and idle-slot delaying.
//!
//! This crate implements the base scheduler of Sarkar & Simons (SPAA
//! 1996):
//!
//! * [`compute_ranks`] — the deadline-driven *rank* computation of Palem &
//!   Simons (TOPLAS'93), as summarized in paper Section 2.1. The rank of a
//!   node `x` is an upper bound on the completion time of `x` if `x` and
//!   all of its descendants are to complete by their deadlines.
//! * [`list_schedule`] — greedy list scheduling from an arbitrary priority
//!   list (the paper's step 3, also reused by every baseline scheduler).
//! * [`rank_schedule`] — ranks + nondecreasing-rank list + greedy; optimal
//!   for 0/1 latencies, unit execution times and a single functional unit,
//!   and a minimum-tardiness scheduler under deadlines.
//! * [`move_idle_slot`] / [`delay_idle_slots`] — the paper's Section 3
//!   extension that pushes idle slots as late as possible by tightening
//!   deadlines (Figure 4 / Figure 6), the key enabler of anticipatory
//!   scheduling.
//! * [`brute`] — an exact branch-and-bound scheduler used as ground truth
//!   in tests and in the E7 optimality experiment.
//!
//! # Fidelity note
//!
//! The rank computation is reconstructed from the conference paper's
//! summary (the detailed TOPLAS'93 procedure and the companion TR are
//! not reproduced verbatim). The reconstruction is *sound* — every rank
//! is a valid upper bound, verified by property tests — and empirically
//! **makespan-optimal** in the restricted case (hundreds of instances
//! against exhaustive search, experiment E7). Deadline-*feasibility*
//! probing is near-exact: on rare tie patterns the greedy pass misses a
//! feasible deadline assignment by one cycle, so [`rank_schedule`] backs
//! the rank list with an earliest-deadline-first retry, and callers
//! (`merge` in `asched-core`, [`min_max_tardiness`]) treat infeasibility
//! as a probe answer with guaranteed-feasible fallbacks, never as a hard
//! fact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
mod deadline;
mod idle;
mod list;
mod ranks;
mod tardiness;

pub use deadline::Deadlines;
pub use idle::{
    delay_idle_slots, delay_idle_slots_release, delay_idle_slots_release_rec, move_idle_slot,
    move_idle_slot_release, move_idle_slot_release_rec, MoveOutcome,
};
pub use list::{list_schedule, list_schedule_release};
pub use ranks::{
    compute_ranks, compute_ranks_mode, rank_priority, rank_schedule, rank_schedule_default,
    rank_schedule_mode, rank_schedule_mode_rec, rank_schedule_release, rank_schedule_release_rec,
    BackwardMode, RankError, RankOutput,
};
pub use tardiness::{max_tardiness, min_max_tardiness};
