//! The Rank Algorithm and idle-slot delaying.
//!
//! This crate implements the base scheduler of Sarkar & Simons (SPAA
//! 1996):
//!
//! * [`compute_ranks`] — the deadline-driven *rank* computation of Palem &
//!   Simons (TOPLAS'93), as summarized in paper Section 2.1. The rank of a
//!   node `x` is an upper bound on the completion time of `x` if `x` and
//!   all of its descendants are to complete by their deadlines.
//! * [`list_schedule`] — greedy list scheduling from an arbitrary priority
//!   list (the paper's step 3, also reused by every baseline scheduler).
//! * [`rank_schedule`] — ranks + nondecreasing-rank list + greedy; optimal
//!   for 0/1 latencies, unit execution times and a single functional unit,
//!   and a minimum-tardiness scheduler under deadlines.
//! * [`move_idle_slot`] / [`delay_idle_slots`] — the paper's Section 3
//!   extension that pushes idle slots as late as possible by tightening
//!   deadlines (Figure 4 / Figure 6), the key enabler of anticipatory
//!   scheduling.
//! * [`brute`] — an exact branch-and-bound scheduler used as ground truth
//!   in tests and in the E7 optimality experiment.
//!
//! Every algorithm here takes a `&mut` [`SchedCtx`] (re-exported from
//! `asched-graph`) carrying the memoized graph analyses and reusable
//! scratch buffers, plus a [`SchedOpts`] bundling release times, the
//! backward-scheduling mode and the event recorder. There is exactly one
//! entry point per algorithm; the old `*_release` / `*_rec` / `*_mode`
//! variants are gone. Reusing one context across calls on the same
//! `(graph, mask)` makes repeated ranking — idle-slot delaying, merge
//! probes, tardiness searches — allocation-free after warm-up, with
//! bit-identical results to a fresh context.
//!
//! # Fidelity note
//!
//! The rank computation is reconstructed from the conference paper's
//! summary (the detailed TOPLAS'93 procedure and the companion TR are
//! not reproduced verbatim). The reconstruction is *sound* — every rank
//! is a valid upper bound, verified by property tests — and empirically
//! **makespan-optimal** in the restricted case (hundreds of instances
//! against exhaustive search, experiment E7). Deadline-*feasibility*
//! probing is near-exact: on rare tie patterns the greedy pass misses a
//! feasible deadline assignment by one cycle, so [`rank_schedule`] backs
//! the rank list with an earliest-deadline-first retry, and callers
//! (`merge` in `asched-core`, [`min_max_tardiness`]) treat infeasibility
//! as a probe answer with guaranteed-feasible fallbacks, never as a hard
//! fact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
mod deadline;
mod idle;
mod list;
mod ranks;
mod tardiness;

pub use asched_graph::{BackwardMode, SchedCtx, SchedOpts};
pub use deadline::Deadlines;
pub use idle::{delay_idle_slots, move_idle_slot, MoveOutcome};
pub use list::list_schedule;
pub use ranks::{
    compute_ranks, rank_priority, rank_schedule, rank_schedule_default, RankError, RankOutput,
};
pub use tardiness::{max_tardiness, min_max_tardiness};
