//! The rank computation and the Rank Algorithm proper.
//!
//! Paper Section 2.1: *"The deadline of instruction x, written d(x), is the
//! latest time at which x can be completed in any feasible schedule. The
//! rank of x is an upper bound on the completion time of x if x and all of
//! the descendants of x are to complete by their deadlines. The Rank
//! Algorithm executes the following steps: 1) compute the ranks of all the
//! nodes, 2) construct `list`, an ordered list of nodes in nondecreasing
//! order of their ranks, 3) apply a greedy scheduling algorithm to
//! `list`."*
//!
//! The rank of `x` is obtained by *backward-scheduling* the descendants of
//! `x` at the latest times consistent with their (already computed) ranks,
//! then bounding the completion of `x` by
//!
//! * `d(x)` itself,
//! * `start(s) − latency(x, s)` for every immediate successor `s`, and
//! * on a single-unit machine, the earliest start among all descendants
//!   (`x` must run before every one of them on the one unit).
//!
//! For multiple functional units the last bound is dropped and the
//! backward schedule packs each descendant onto the compatible unit that
//! allows the latest completion — the Section 4.2 heuristic.

use crate::deadline::Deadlines;
use crate::list::list_schedule_release;
use asched_graph::{descendants_with_order, topo_order, CycleError};
use asched_graph::{DepGraph, MachineModel, NodeId, NodeSet, Schedule};
use std::fmt;

/// Failure modes of the rank computation / Rank Algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RankError {
    /// The loop-independent subgraph is cyclic.
    Cyclic(CycleError),
    /// The deadlines cannot all be met: some node's rank dropped below its
    /// execution time (it would have to complete before it could even
    /// finish running from time 0), or the greedy schedule misses a
    /// deadline (possible in the heuristic, non-restricted cases).
    Infeasible {
        /// A node whose deadline cannot be met.
        node: NodeId,
    },
}

impl fmt::Display for RankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankError::Cyclic(c) => write!(f, "{c}"),
            RankError::Infeasible { node } => {
                write!(f, "deadlines infeasible (witness node {node})")
            }
        }
    }
}

impl std::error::Error for RankError {}

impl From<CycleError> for RankError {
    fn from(c: CycleError) -> Self {
        RankError::Cyclic(c)
    }
}

/// How non-unit execution times are placed in the backward schedule of
/// the rank computation (paper Section 4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BackwardMode {
    /// *"The simplest approach is to insert each instruction whole into
    /// the backward schedule so that it completes at the latest possible
    /// time no later than its rank."* Tighter ranks, but on multi-unit
    /// machines the committed unit choice can make them tighter than any
    /// real schedule requires.
    #[default]
    Whole,
    /// *"An alternative approach that maintains the upper bound condition
    /// on the ranks in the multiple functional unit case is to break up
    /// longer instructions into single units … The piece of the
    /// instruction that has the earliest start time assigned to it in the
    /// backward schedule is used for the rank computation."* Looser but
    /// sound ranks; only differs from [`BackwardMode::Whole`] on
    /// multi-unit machines with non-unit execution times.
    Piecewise,
}

/// Result of [`rank_schedule`]: the schedule plus the data that produced
/// it, which callers (idle-slot moving, merge) reuse.
#[derive(Clone, Debug)]
pub struct RankOutput {
    /// The greedy schedule built from the rank-ordered list.
    pub schedule: Schedule,
    /// Ranks indexed by `NodeId::index()` (meaningless outside the mask).
    pub ranks: Vec<i64>,
    /// The priority list the greedy scheduler consumed. On the normal
    /// path this is nondecreasing rank with ties broken by source
    /// order; if the rank order missed a deadline and the EDF retry
    /// succeeded instead, it is the deadline-sorted list that retry
    /// used. Either way, replaying it through the greedy scheduler
    /// reproduces `schedule`.
    pub priority: Vec<NodeId>,
}

/// Compute the rank of every node in `mask` under deadlines `d`.
///
/// Ranks may drop below a node's execution time (or below zero) when the
/// deadlines are unachievable — or merely when the backward schedule's
/// tie-breaking was pessimistic. They are *priorities*: feasibility is
/// decided by [`rank_schedule`]'s final deadline check on the greedy
/// schedule, never by the rank values alone.
pub fn compute_ranks(
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    d: &Deadlines,
) -> Result<Vec<i64>, RankError> {
    compute_ranks_mode(g, mask, machine, d, BackwardMode::Whole)
}

/// [`compute_ranks`] with an explicit [`BackwardMode`] for non-unit
/// execution times on multi-unit machines (paper Section 4.2).
pub fn compute_ranks_mode(
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    d: &Deadlines,
    mode: BackwardMode,
) -> Result<Vec<i64>, RankError> {
    // Perf headroom: topo order and the descendant bitsets depend only
    // on (g, mask) and could be cached across the repeated calls the
    // deadline-manipulation loops make. At the paper's block sizes
    // (tens of instructions; E11 measures 5.5 ms even at 512 nodes) the
    // recomputation is noise, so we keep the API stateless — but we do
    // sort only once and reuse the order for the descendant sweep.
    let order = topo_order(g, mask)?;
    let desc = descendants_with_order(g, mask, &order);
    let mut rank = vec![i64::MAX; g.len()];
    // Backward-schedule start times, reused per node.
    let mut back_start = vec![0i64; g.len()];

    // Per-descendant tie-break key: the latency x must leave before the
    // descendant starts (u32::MAX for non-successors, which impose no
    // edge constraint on x at all).
    let mut urgency = vec![u32::MAX; g.len()];
    for &x in order.iter().rev() {
        // Gather descendants sorted by decreasing rank (ranks are already
        // final: reverse topological order). Among equal ranks, fill the
        // *latest* slots with the descendants whose placement constrains
        // x least: non-successors first, then successors through larger
        // latencies — this maximizes `min(start(s) - latency(x,s))` over
        // the pack and keeps the rank a tight-but-sound upper bound
        // (without it, a latency-0 successor parked late would slacken
        // while a latency-1 successor gets squeezed early). Remaining
        // ties break on the stable source key for determinism.
        let succs = g.succs_in(x, mask);
        for &(s, lat) in &succs {
            urgency[s.index()] = lat;
        }
        let mut ds: Vec<NodeId> = desc[x.index()].iter().collect();
        ds.sort_by(|&a, &b| {
            rank[b.index()]
                .cmp(&rank[a.index()])
                .then_with(|| urgency[b.index()].cmp(&urgency[a.index()]))
                .then_with(|| g.stable_key(b).cmp(&g.stable_key(a)))
        });

        let mut bound = d.get(x);
        if machine.is_single_unit() {
            // Pack descendants backward on the single unit.
            let mut earliest = i64::MAX;
            for &y in &ds {
                let completion = rank[y.index()].min(earliest);
                let start = completion - g.exec_time(y) as i64;
                back_start[y.index()] = start;
                earliest = start;
            }
            // x must run before all of its descendants.
            bound = bound.min(earliest);
        } else {
            // Multi-unit heuristic: per-unit backward packing, each
            // descendant on the compatible unit allowing the latest
            // completion.
            let mut unit_earliest = vec![i64::MAX; machine.num_units()];
            for &y in &ds {
                let class = g.node(y).class;
                let exec = g.exec_time(y) as i64;
                match mode {
                    BackwardMode::Whole => {
                        let mut best: Option<(i64, usize)> = None;
                        for u in machine.units_for(class) {
                            let completion = rank[y.index()].min(unit_earliest[u]);
                            if best.is_none_or(|(c, _)| completion > c) {
                                best = Some((completion, u));
                            }
                        }
                        let (completion, u) =
                            best.expect("machine must have a unit for every class");
                        let start = completion - exec;
                        back_start[y.index()] = start;
                        unit_earliest[u] = start;
                    }
                    BackwardMode::Piecewise => {
                        // Place `exec` single-cycle pieces independently,
                        // each at the latest possible slot; the earliest
                        // piece start is the instruction's start.
                        let mut earliest_piece = i64::MAX;
                        for _ in 0..exec {
                            let mut best: Option<(i64, usize)> = None;
                            for u in machine.units_for(class) {
                                let completion = rank[y.index()].min(unit_earliest[u]);
                                if best.is_none_or(|(c, _)| completion > c) {
                                    best = Some((completion, u));
                                }
                            }
                            let (completion, u) =
                                best.expect("machine must have a unit for every class");
                            unit_earliest[u] = completion - 1;
                            earliest_piece = earliest_piece.min(completion - 1);
                        }
                        back_start[y.index()] = earliest_piece;
                    }
                }
            }
        }
        // Immediate-successor constraints: start(s) - latency(x, s).
        for &(s, lat) in &succs {
            bound = bound.min(back_start[s.index()] - lat as i64);
            urgency[s.index()] = u32::MAX; // reset for the next node
        }
        rank[x.index()] = bound;
    }
    Ok(rank)
}

/// The priority list of the Rank Algorithm: nodes of `mask` in
/// nondecreasing rank order, ties broken by (block, source position, id).
pub fn rank_priority(g: &DepGraph, mask: &NodeSet, ranks: &[i64]) -> Vec<NodeId> {
    let mut v: Vec<NodeId> = mask.iter().collect();
    v.sort_by(|&a, &b| {
        ranks[a.index()]
            .cmp(&ranks[b.index()])
            .then_with(|| g.stable_key(a).cmp(&g.stable_key(b)))
    });
    v
}

/// The full Rank Algorithm: ranks, nondecreasing-rank list, greedy
/// schedule, and a final deadline check.
///
/// In the restricted case (0/1 latencies, unit execution times, single
/// functional unit) the result is a minimum-makespan schedule and the
/// deadline check never fires when the deadlines are achievable
/// (Palem–Simons). In the general case this is the Section 4.2 heuristic
/// and the check guards callers such as `merge` that probe feasibility.
pub fn rank_schedule(
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    d: &Deadlines,
) -> Result<RankOutput, RankError> {
    rank_schedule_release(g, mask, machine, d, None)
}

/// [`rank_schedule`] with per-node release times (see
/// [`list_schedule_release`]). Release times only delay the greedy
/// scheduler; ranks remain valid upper bounds, and the final deadline
/// check still guards feasibility.
pub fn rank_schedule_release(
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    d: &Deadlines,
    release: Option<&[u64]>,
) -> Result<RankOutput, RankError> {
    rank_schedule_mode(g, mask, machine, d, release, BackwardMode::Whole)
}

/// [`rank_schedule_release`] reporting to a recorder (see
/// [`rank_schedule_mode_rec`]).
pub fn rank_schedule_release_rec(
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    d: &Deadlines,
    release: Option<&[u64]>,
    rec: &dyn asched_obs::Recorder,
) -> Result<RankOutput, RankError> {
    rank_schedule_mode_rec(g, mask, machine, d, release, BackwardMode::Whole, rec)
}

/// [`rank_schedule_release`] with an explicit [`BackwardMode`].
pub fn rank_schedule_mode(
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    d: &Deadlines,
    release: Option<&[u64]>,
    mode: BackwardMode,
) -> Result<RankOutput, RankError> {
    rank_schedule_mode_rec(g, mask, machine, d, release, mode, &asched_obs::NULL)
}

/// [`rank_schedule_mode`] reporting each run to a recorder: one timed
/// `rank` pass plus a `rank_run` event carrying the node count, the
/// resulting makespan (0 on infeasibility) and the feasibility verdict.
/// With a disabled recorder this is exactly [`rank_schedule_mode`].
pub fn rank_schedule_mode_rec(
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    d: &Deadlines,
    release: Option<&[u64]>,
    mode: BackwardMode,
    rec: &dyn asched_obs::Recorder,
) -> Result<RankOutput, RankError> {
    let result = asched_obs::timed(rec, asched_obs::Pass::Rank, || {
        rank_schedule_mode_inner(g, mask, machine, d, release, mode)
    });
    asched_obs::record!(
        rec,
        asched_obs::Event::RankRun {
            nodes: mask.len() as u32,
            makespan: result.as_ref().map(|o| o.schedule.makespan()).unwrap_or(0),
            feasible: result.is_ok(),
        }
    );
    result
}

fn rank_schedule_mode_inner(
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    d: &Deadlines,
    release: Option<&[u64]>,
    mode: BackwardMode,
) -> Result<RankOutput, RankError> {
    let ranks = compute_ranks_mode(g, mask, machine, d, mode)?;
    let priority = rank_priority(g, mask, &ranks);
    let schedule = list_schedule_release(g, mask, machine, &priority, release);
    let misses = |s: &Schedule| {
        mask.iter()
            .find(|&id| s.completion(id).expect("list_schedule covers mask") as i64 > d.get(id))
    };
    if misses(&schedule).is_none() {
        return Ok(RankOutput {
            schedule,
            ranks,
            priority,
        });
    }
    // The rank list missed a deadline. Backward-schedule tie-breaking
    // makes our rank computation slightly pessimistic in rare cases;
    // before declaring infeasibility, try the earliest-deadline-first
    // list (ties by rank, then source order), which meets deadlines in
    // some of the instances the rank list does not.
    let mut edf: Vec<NodeId> = mask.iter().collect();
    edf.sort_by(|&a, &b| {
        d.get(a)
            .cmp(&d.get(b))
            .then_with(|| ranks[a.index()].cmp(&ranks[b.index()]))
            .then_with(|| g.stable_key(a).cmp(&g.stable_key(b)))
    });
    let schedule2 = list_schedule_release(g, mask, machine, &edf, release);
    match misses(&schedule2) {
        None => Ok(RankOutput {
            schedule: schedule2,
            ranks,
            priority: edf,
        }),
        Some(node) => Err(RankError::Infeasible { node }),
    }
}

/// [`rank_schedule`] with unconstrained deadlines: a plain
/// minimum-makespan scheduler (optimal in the restricted case).
pub fn rank_schedule_default(
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
) -> Result<Schedule, RankError> {
    let d = Deadlines::unbounded(g, mask);
    Ok(rank_schedule(g, mask, machine, &d)?.schedule)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use asched_graph::validate::validate_schedule;
    use asched_graph::BlockId;

    /// The Figure 1 basic block BB1: x→{w,b,r}, e→{w,b}, w→a, b→a, all
    /// latency 1, unit execution times. Insertion order chosen so that
    /// rank ties break as in the paper's walk-through (e before x, b
    /// before w, a before r).
    pub(crate) fn fig1() -> (DepGraph, [NodeId; 6]) {
        let mut g = DepGraph::new();
        let e = g.add_simple("e", BlockId(0));
        let x = g.add_simple("x", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let w = g.add_simple("w", BlockId(0));
        let a = g.add_simple("a", BlockId(0));
        let r = g.add_simple("r", BlockId(0));
        for &(s, t) in &[(x, w), (x, b), (x, r), (e, w), (e, b), (w, a), (b, a)] {
            g.add_dep(s, t, 1);
        }
        (g, [x, e, w, b, a, r])
    }

    #[test]
    fn fig1_ranks_match_paper() {
        // Paper: with deadline 100 for all nodes, rank(a)=rank(r)=100,
        // rank(w)=rank(b)=98, rank(x)=rank(e)=95.
        let (g, [x, e, w, b, a, r]) = fig1();
        let m = MachineModel::single_unit(2);
        let d = Deadlines::uniform(&g, &g.all_nodes(), 100);
        let ranks = compute_ranks(&g, &g.all_nodes(), &m, &d).unwrap();
        assert_eq!(ranks[a.index()], 100);
        assert_eq!(ranks[r.index()], 100);
        assert_eq!(ranks[w.index()], 98);
        assert_eq!(ranks[b.index()], 98);
        assert_eq!(ranks[x.index()], 95);
        assert_eq!(ranks[e.index()], 95);
    }

    #[test]
    fn fig1_schedule_matches_paper() {
        // Paper list e,x,b,w,a,r gives schedule e x _ b w r a, makespan 7
        // with the idle slot at t=2.
        let (g, [x, e, w, b, a, r]) = fig1();
        let m = MachineModel::single_unit(2);
        let out = rank_schedule(
            &g,
            &g.all_nodes(),
            &m,
            &Deadlines::uniform(&g, &g.all_nodes(), 100),
        )
        .unwrap();
        assert_eq!(out.priority, vec![e, x, b, w, a, r]);
        let s = &out.schedule;
        assert_eq!(s.makespan(), 7);
        assert_eq!(s.start(e), Some(0));
        assert_eq!(s.start(x), Some(1));
        assert_eq!(s.start(b), Some(3));
        assert_eq!(s.start(w), Some(4));
        assert_eq!(s.start(r), Some(5));
        assert_eq!(s.start(a), Some(6));
        assert_eq!(s.idle_slots(&m), vec![2]);
        validate_schedule(&g, &g.all_nodes(), &m, s, None).unwrap();
    }

    #[test]
    fn fig1_forced_x_first() {
        // With d(x) = 1 the schedule becomes x e r ... with the idle slot
        // at t=5 (paper Section 2.2).
        let (g, [x, _e, _w, _b, a, _r]) = fig1();
        let m = MachineModel::single_unit(2);
        let mut d = Deadlines::uniform(&g, &g.all_nodes(), 7);
        d.set(x, 1);
        let out = rank_schedule(&g, &g.all_nodes(), &m, &d).unwrap();
        let s = &out.schedule;
        assert_eq!(s.makespan(), 7);
        assert_eq!(s.start(x), Some(0));
        assert_eq!(s.idle_slots(&m), vec![5]);
        assert_eq!(s.start(a), Some(6));
        validate_schedule(&g, &g.all_nodes(), &m, s, Some(d.as_slice())).unwrap();
    }

    #[test]
    fn infeasible_deadline_detected() {
        let (g, [x, ..]) = fig1();
        let m = MachineModel::single_unit(2);
        let mut d = Deadlines::uniform(&g, &g.all_nodes(), 7);
        d.set(x, 0); // x can never complete by time 0
                     // Ranks always compute (they are priorities)…
        assert!(compute_ranks(&g, &g.all_nodes(), &m, &d).is_ok());
        // …but the greedy schedule's deadline check reports infeasibility.
        assert!(matches!(
            rank_schedule(&g, &g.all_nodes(), &m, &d),
            Err(RankError::Infeasible { .. })
        ));
    }

    #[test]
    fn tight_but_feasible_deadlines() {
        // Chain a -(0)-> b: both can complete by 2.
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 0);
        let m = MachineModel::single_unit(2);
        let d = Deadlines::uniform(&g, &g.all_nodes(), 2);
        let out = rank_schedule(&g, &g.all_nodes(), &m, &d).unwrap();
        assert_eq!(out.schedule.makespan(), 2);
        assert_eq!(out.ranks[a.index()], 1);
        assert_eq!(out.ranks[b.index()], 2);
    }

    #[test]
    fn rank_respects_mask() {
        let (g, [x, e, w, b, a, _r]) = fig1();
        let m = MachineModel::single_unit(2);
        // Schedule only {x, w, a}: chain with latency 1 => makespan 5.
        let mask: NodeSet = NodeSet::from_iter_with_universe(g.len(), [x, w, a]);
        let s = rank_schedule_default(&g, &mask, &m).unwrap();
        assert_eq!(s.makespan(), 5);
        assert_eq!(s.num_scheduled(), 3);
        let _ = (e, b);
    }

    #[test]
    fn default_schedule_is_optimal_on_restricted_case() {
        // Cross-check against brute force on Figure 1.
        let (g, _) = fig1();
        let m = MachineModel::single_unit(2);
        let s = rank_schedule_default(&g, &g.all_nodes(), &m).unwrap();
        let opt = crate::brute::optimal_makespan(&g, &g.all_nodes(), &m);
        assert_eq!(s.makespan(), opt);
    }

    #[test]
    fn multi_unit_heuristic_is_valid() {
        let (g, _) = fig1();
        let m = MachineModel::uniform(2, 2);
        let s = rank_schedule_default(&g, &g.all_nodes(), &m).unwrap();
        validate_schedule(&g, &g.all_nodes(), &m, &s, None).unwrap();
        // Two units can't be slower than one.
        assert!(s.makespan() <= 7);
    }

    #[test]
    fn piecewise_mode_equals_whole_on_single_unit() {
        let (g, _) = fig1();
        let m = MachineModel::single_unit(2);
        let d = Deadlines::uniform(&g, &g.all_nodes(), 100);
        let whole = compute_ranks_mode(&g, &g.all_nodes(), &m, &d, BackwardMode::Whole).unwrap();
        let piece =
            compute_ranks_mode(&g, &g.all_nodes(), &m, &d, BackwardMode::Piecewise).unwrap();
        assert_eq!(whole, piece);
    }

    #[test]
    fn piecewise_ranks_never_tighter_than_whole() {
        // A multi-unit machine with a multi-cycle descendant: whole
        // insertion commits the 3-cycle op to one unit (start = rank-3),
        // piecewise spreads the pieces (start >= rank-2), so the
        // ancestor's piecewise rank is no smaller.
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let long = g.add_simple("long", BlockId(0));
        g.node_mut(long).exec_time = 3;
        g.add_dep(a, long, 0);
        let m = MachineModel::uniform(3, 2);
        let d = Deadlines::uniform(&g, &g.all_nodes(), 10);
        let whole = compute_ranks_mode(&g, &g.all_nodes(), &m, &d, BackwardMode::Whole).unwrap();
        let piece =
            compute_ranks_mode(&g, &g.all_nodes(), &m, &d, BackwardMode::Piecewise).unwrap();
        for id in g.node_ids() {
            assert!(
                piece[id.index()] >= whole[id.index()],
                "piecewise must be the looser (sound) bound for {id}"
            );
        }
        // Concretely: whole places `long` at [7,10) so a <= 7; piecewise
        // places three pieces at [9,10) on three units so a <= 9.
        assert_eq!(whole[a.index()], 7);
        assert_eq!(piece[a.index()], 9);
    }

    #[test]
    fn piecewise_schedule_is_valid() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("div", BlockId(0));
        g.node_mut(b).exec_time = 4;
        let c = g.add_simple("c", BlockId(0));
        g.add_dep(a, b, 1);
        g.add_dep(b, c, 2);
        let m = MachineModel::uniform(2, 2);
        let d = Deadlines::unbounded(&g, &g.all_nodes());
        let out =
            rank_schedule_mode(&g, &g.all_nodes(), &m, &d, None, BackwardMode::Piecewise).unwrap();
        asched_graph::validate::validate_schedule(&g, &g.all_nodes(), &m, &out.schedule, None)
            .unwrap();
    }

    #[test]
    fn cyclic_graph_rejected() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 0);
        g.add_dep(b, a, 0);
        let m = MachineModel::single_unit(2);
        assert!(matches!(
            rank_schedule_default(&g, &g.all_nodes(), &m),
            Err(RankError::Cyclic(_))
        ));
    }
}
