//! The rank computation and the Rank Algorithm proper.
//!
//! Paper Section 2.1: *"The deadline of instruction x, written d(x), is the
//! latest time at which x can be completed in any feasible schedule. The
//! rank of x is an upper bound on the completion time of x if x and all of
//! the descendants of x are to complete by their deadlines. The Rank
//! Algorithm executes the following steps: 1) compute the ranks of all the
//! nodes, 2) construct `list`, an ordered list of nodes in nondecreasing
//! order of their ranks, 3) apply a greedy scheduling algorithm to
//! `list`."*
//!
//! The rank of `x` is obtained by *backward-scheduling* the descendants of
//! `x` at the latest times consistent with their (already computed) ranks,
//! then bounding the completion of `x` by
//!
//! * `d(x)` itself,
//! * `start(s) − latency(x, s)` for every immediate successor `s`, and
//! * on a single-unit machine, the earliest start among all descendants
//!   (`x` must run before every one of them on the one unit).
//!
//! For multiple functional units the last bound is dropped and the
//! backward schedule packs each descendant onto the compatible unit that
//! allows the latest completion — the Section 4.2 heuristic.
//!
//! Every entry point takes a [`SchedCtx`]: the topological order, the
//! descendant bitsets and the successor lists are served from its
//! analysis cache (the deadline-manipulation loops re-rank the same
//! `(graph, mask)` dozens of times), and all working vectors live in its
//! scratch so a warmed-up context computes ranks without allocating.

use crate::deadline::Deadlines;
use crate::list::list_schedule_into;
use asched_graph::{AnalysisCache, BackwardMode, CycleError, SchedCtx, SchedOpts, Scratch};
use asched_graph::{DepGraph, MachineModel, NodeId, NodeSet, Schedule};
use std::fmt;

/// Failure modes of the rank computation / Rank Algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RankError {
    /// The loop-independent subgraph is cyclic.
    Cyclic(CycleError),
    /// The deadlines cannot all be met: some node's rank dropped below its
    /// execution time (it would have to complete before it could even
    /// finish running from time 0), or the greedy schedule misses a
    /// deadline (possible in the heuristic, non-restricted cases).
    Infeasible {
        /// A node whose deadline cannot be met.
        node: NodeId,
    },
}

impl fmt::Display for RankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankError::Cyclic(c) => write!(f, "{c}"),
            RankError::Infeasible { node } => {
                write!(f, "deadlines infeasible (witness node {node})")
            }
        }
    }
}

impl std::error::Error for RankError {}

impl From<CycleError> for RankError {
    fn from(c: CycleError) -> Self {
        RankError::Cyclic(c)
    }
}

/// Result of [`rank_schedule`]: the schedule plus the data that produced
/// it, which callers (idle-slot moving, merge) reuse.
#[derive(Clone, Debug)]
pub struct RankOutput {
    /// The greedy schedule built from the rank-ordered list.
    pub schedule: Schedule,
    /// Ranks indexed by `NodeId::index()` (meaningless outside the mask).
    pub ranks: Vec<i64>,
    /// The priority list the greedy scheduler consumed. On the normal
    /// path this is nondecreasing rank with ties broken by source
    /// order; if the rank order missed a deadline and the EDF retry
    /// succeeded instead, it is the deadline-sorted list that retry
    /// used. Either way, replaying it through the greedy scheduler
    /// reproduces `schedule`.
    pub priority: Vec<NodeId>,
}

/// Compute the rank of every node in `mask` under deadlines `d`,
/// returning a slice borrowed from the context's scratch (valid until
/// the context is used again).
///
/// Ranks may drop below a node's execution time (or below zero) when the
/// deadlines are unachievable — or merely when the backward schedule's
/// tie-breaking was pessimistic. They are *priorities*: feasibility is
/// decided by [`rank_schedule`]'s final deadline check on the greedy
/// schedule, never by the rank values alone.
///
/// `opts.backward` selects the [`BackwardMode`] for non-unit execution
/// times on multi-unit machines (paper Section 4.2); the other options
/// do not affect ranks. On a warm context (analysis cached, scratch
/// sized) this performs no heap allocation.
pub fn compute_ranks<'c>(
    ctx: &'c mut SchedCtx,
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    d: &Deadlines,
    opts: &SchedOpts,
) -> Result<&'c [i64], RankError> {
    compute_ranks_into(
        &mut ctx.cache,
        &mut ctx.scratch,
        g,
        mask,
        machine,
        d,
        opts.backward,
    )?;
    Ok(&ctx.scratch.rank)
}

/// The rank computation proper, leaving the ranks in `scratch.rank`
/// (indexed by `NodeId::index()`). Split from [`SchedCtx`] so callers
/// can hold other scratch fields across the call.
pub(crate) fn compute_ranks_into(
    cache: &mut AnalysisCache,
    scratch: &mut Scratch,
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    d: &Deadlines,
    mode: BackwardMode,
) -> Result<(), RankError> {
    // Topo order, descendant bitsets and successor lists depend only on
    // (g, mask): the analysis cache serves them across the repeated
    // calls the deadline-manipulation loops make.
    let analysis = cache.analysis(g, mask)?;
    let n = g.len();
    let Scratch {
        rank,
        back_start,
        urgency,
        ds,
        unit_earliest,
        ..
    } = scratch;
    rank.clear();
    rank.resize(n, i64::MAX);
    // Backward-schedule start times, reused per node.
    back_start.clear();
    back_start.resize(n, 0);
    // Per-descendant tie-break key: the latency x must leave before the
    // descendant starts (u32::MAX for non-successors, which impose no
    // edge constraint on x at all).
    urgency.clear();
    urgency.resize(n, u32::MAX);

    for &x in analysis.order.iter().rev() {
        // Gather descendants sorted by decreasing rank (ranks are already
        // final: reverse topological order). Among equal ranks, fill the
        // *latest* slots with the descendants whose placement constrains
        // x least: non-successors first, then successors through larger
        // latencies — this maximizes `min(start(s) - latency(x,s))` over
        // the pack and keeps the rank a tight-but-sound upper bound
        // (without it, a latency-0 successor parked late would slacken
        // while a latency-1 successor gets squeezed early). Remaining
        // ties break on the stable source key for determinism — the key
        // is unique per node, so the comparator is a total order and the
        // (allocation-free) unstable sort is deterministic.
        let succs = &analysis.succs[x.index()];
        for &(s, lat) in succs {
            urgency[s.index()] = lat;
        }
        ds.clear();
        ds.extend(analysis.desc[x.index()].iter());
        ds.sort_unstable_by(|&a, &b| {
            rank[b.index()]
                .cmp(&rank[a.index()])
                .then_with(|| urgency[b.index()].cmp(&urgency[a.index()]))
                .then_with(|| g.stable_key(b).cmp(&g.stable_key(a)))
        });

        let mut bound = d.get(x);
        if machine.is_single_unit() {
            // Pack descendants backward on the single unit.
            let mut earliest = i64::MAX;
            for &y in ds.iter() {
                let completion = rank[y.index()].min(earliest);
                let start = completion - g.exec_time(y) as i64;
                back_start[y.index()] = start;
                earliest = start;
            }
            // x must run before all of its descendants.
            bound = bound.min(earliest);
        } else {
            // Multi-unit heuristic: per-unit backward packing, each
            // descendant on the compatible unit allowing the latest
            // completion.
            unit_earliest.clear();
            unit_earliest.resize(machine.num_units(), i64::MAX);
            for &y in ds.iter() {
                let class = g.node(y).class;
                let exec = g.exec_time(y) as i64;
                match mode {
                    BackwardMode::Whole => {
                        let mut best: Option<(i64, usize)> = None;
                        for u in machine.units_for(class) {
                            let completion = rank[y.index()].min(unit_earliest[u]);
                            if best.is_none_or(|(c, _)| completion > c) {
                                best = Some((completion, u));
                            }
                        }
                        let (completion, u) =
                            best.expect("machine must have a unit for every class");
                        let start = completion - exec;
                        back_start[y.index()] = start;
                        unit_earliest[u] = start;
                    }
                    BackwardMode::Piecewise => {
                        // Place `exec` single-cycle pieces independently,
                        // each at the latest possible slot; the earliest
                        // piece start is the instruction's start.
                        let mut earliest_piece = i64::MAX;
                        for _ in 0..exec {
                            let mut best: Option<(i64, usize)> = None;
                            for u in machine.units_for(class) {
                                let completion = rank[y.index()].min(unit_earliest[u]);
                                if best.is_none_or(|(c, _)| completion > c) {
                                    best = Some((completion, u));
                                }
                            }
                            let (completion, u) =
                                best.expect("machine must have a unit for every class");
                            unit_earliest[u] = completion - 1;
                            earliest_piece = earliest_piece.min(completion - 1);
                        }
                        back_start[y.index()] = earliest_piece;
                    }
                }
            }
        }
        // Immediate-successor constraints: start(s) - latency(x, s).
        for &(s, lat) in succs {
            bound = bound.min(back_start[s.index()] - lat as i64);
            urgency[s.index()] = u32::MAX; // reset for the next node
        }
        rank[x.index()] = bound;
    }
    Ok(())
}

/// The priority list of the Rank Algorithm: nodes of `mask` in
/// nondecreasing rank order, ties broken by (block, source position, id).
pub fn rank_priority(g: &DepGraph, mask: &NodeSet, ranks: &[i64]) -> Vec<NodeId> {
    let mut v = Vec::new();
    rank_priority_into(&mut v, g, mask, ranks);
    v
}

/// [`rank_priority`] into a reusable buffer. The comparator's final
/// stable-key component is unique per node, so the unstable sort is a
/// deterministic total order.
pub(crate) fn rank_priority_into(
    prio: &mut Vec<NodeId>,
    g: &DepGraph,
    mask: &NodeSet,
    ranks: &[i64],
) {
    prio.clear();
    prio.extend(mask.iter());
    prio.sort_unstable_by(|&a, &b| {
        ranks[a.index()]
            .cmp(&ranks[b.index()])
            .then_with(|| g.stable_key(a).cmp(&g.stable_key(b)))
    });
}

/// The full Rank Algorithm: ranks, nondecreasing-rank list, greedy
/// schedule, and a final deadline check.
///
/// In the restricted case (0/1 latencies, unit execution times, single
/// functional unit) the result is a minimum-makespan schedule and the
/// deadline check never fires when the deadlines are achievable
/// (Palem–Simons). In the general case this is the Section 4.2 heuristic
/// and the check guards callers such as `merge` that probe feasibility.
///
/// All variants are expressed through `opts`: per-node release times
/// (which only delay the greedy scheduler; ranks remain valid upper
/// bounds and the final deadline check still guards feasibility), the
/// [`BackwardMode`], and the recorder — an enabled recorder sees one
/// timed `rank` pass plus a `rank_run` event carrying the node count,
/// the resulting makespan (0 on infeasibility) and the feasibility
/// verdict.
pub fn rank_schedule(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    d: &Deadlines,
    opts: &SchedOpts,
) -> Result<RankOutput, RankError> {
    let rec = opts.rec;
    let result = asched_obs::timed_span(rec, asched_obs::Pass::Rank, opts.span, || {
        rank_schedule_inner(ctx, g, mask, machine, d, opts)
    });
    asched_obs::record!(
        rec,
        asched_obs::Event::RankRun {
            nodes: mask.len() as u32,
            makespan: result.as_ref().map(|o| o.schedule.makespan()).unwrap_or(0),
            feasible: result.is_ok(),
        }
    );
    result
}

fn rank_schedule_inner(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    d: &Deadlines,
    opts: &SchedOpts,
) -> Result<RankOutput, RankError> {
    compute_ranks_into(
        &mut ctx.cache,
        &mut ctx.scratch,
        g,
        mask,
        machine,
        d,
        opts.backward,
    )?;
    let Scratch {
        rank: ranks,
        prio,
        list,
        ..
    } = &mut ctx.scratch;
    rank_priority_into(prio, g, mask, ranks);
    let schedule = list_schedule_into(list, g, mask, machine, prio, opts.release);
    let misses = |s: &Schedule| {
        mask.iter()
            .find(|&id| s.completion(id).expect("list_schedule covers mask") as i64 > d.get(id))
    };
    if misses(&schedule).is_none() {
        return Ok(RankOutput {
            schedule,
            ranks: ranks.clone(),
            priority: prio.clone(),
        });
    }
    // The rank list missed a deadline. Backward-schedule tie-breaking
    // makes our rank computation slightly pessimistic in rare cases;
    // before declaring infeasibility, try the earliest-deadline-first
    // list (ties by rank, then source order), which meets deadlines in
    // some of the instances the rank list does not.
    let mut edf: Vec<NodeId> = mask.iter().collect();
    edf.sort_unstable_by(|&a, &b| {
        d.get(a)
            .cmp(&d.get(b))
            .then_with(|| ranks[a.index()].cmp(&ranks[b.index()]))
            .then_with(|| g.stable_key(a).cmp(&g.stable_key(b)))
    });
    let schedule2 = list_schedule_into(list, g, mask, machine, &edf, opts.release);
    match misses(&schedule2) {
        None => Ok(RankOutput {
            schedule: schedule2,
            ranks: ranks.clone(),
            priority: edf,
        }),
        Some(node) => Err(RankError::Infeasible { node }),
    }
}

/// [`rank_schedule`] with unconstrained deadlines and default options: a
/// plain minimum-makespan scheduler (optimal in the restricted case).
pub fn rank_schedule_default(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
) -> Result<Schedule, RankError> {
    let d = Deadlines::unbounded(g, mask);
    Ok(rank_schedule(ctx, g, mask, machine, &d, &SchedOpts::default())?.schedule)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use asched_graph::validate::validate_schedule;
    use asched_graph::BlockId;

    /// The Figure 1 basic block BB1: x→{w,b,r}, e→{w,b}, w→a, b→a, all
    /// latency 1, unit execution times. Insertion order chosen so that
    /// rank ties break as in the paper's walk-through (e before x, b
    /// before w, a before r).
    pub(crate) fn fig1() -> (DepGraph, [NodeId; 6]) {
        let mut g = DepGraph::new();
        let e = g.add_simple("e", BlockId(0));
        let x = g.add_simple("x", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let w = g.add_simple("w", BlockId(0));
        let a = g.add_simple("a", BlockId(0));
        let r = g.add_simple("r", BlockId(0));
        for &(s, t) in &[(x, w), (x, b), (x, r), (e, w), (e, b), (w, a), (b, a)] {
            g.add_dep(s, t, 1);
        }
        (g, [x, e, w, b, a, r])
    }

    #[test]
    fn fig1_ranks_match_paper() {
        // Paper: with deadline 100 for all nodes, rank(a)=rank(r)=100,
        // rank(w)=rank(b)=98, rank(x)=rank(e)=95.
        let (g, [x, e, w, b, a, r]) = fig1();
        let m = MachineModel::single_unit(2);
        let d = Deadlines::uniform(&g, &g.all_nodes(), 100);
        let mut ctx = SchedCtx::new();
        let ranks =
            compute_ranks(&mut ctx, &g, &g.all_nodes(), &m, &d, &SchedOpts::default()).unwrap();
        assert_eq!(ranks[a.index()], 100);
        assert_eq!(ranks[r.index()], 100);
        assert_eq!(ranks[w.index()], 98);
        assert_eq!(ranks[b.index()], 98);
        assert_eq!(ranks[x.index()], 95);
        assert_eq!(ranks[e.index()], 95);
    }

    #[test]
    fn fig1_schedule_matches_paper() {
        // Paper list e,x,b,w,a,r gives schedule e x _ b w r a, makespan 7
        // with the idle slot at t=2.
        let (g, [x, e, w, b, a, r]) = fig1();
        let m = MachineModel::single_unit(2);
        let mut ctx = SchedCtx::new();
        let out = rank_schedule(
            &mut ctx,
            &g,
            &g.all_nodes(),
            &m,
            &Deadlines::uniform(&g, &g.all_nodes(), 100),
            &SchedOpts::default(),
        )
        .unwrap();
        assert_eq!(out.priority, vec![e, x, b, w, a, r]);
        let s = &out.schedule;
        assert_eq!(s.makespan(), 7);
        assert_eq!(s.start(e), Some(0));
        assert_eq!(s.start(x), Some(1));
        assert_eq!(s.start(b), Some(3));
        assert_eq!(s.start(w), Some(4));
        assert_eq!(s.start(r), Some(5));
        assert_eq!(s.start(a), Some(6));
        assert_eq!(s.idle_slots(&m), vec![2]);
        validate_schedule(&g, &g.all_nodes(), &m, s, None).unwrap();
    }

    #[test]
    fn fig1_forced_x_first() {
        // With d(x) = 1 the schedule becomes x e r ... with the idle slot
        // at t=5 (paper Section 2.2).
        let (g, [x, _e, _w, _b, a, _r]) = fig1();
        let m = MachineModel::single_unit(2);
        let mut d = Deadlines::uniform(&g, &g.all_nodes(), 7);
        d.set(x, 1);
        let mut ctx = SchedCtx::new();
        let out =
            rank_schedule(&mut ctx, &g, &g.all_nodes(), &m, &d, &SchedOpts::default()).unwrap();
        let s = &out.schedule;
        assert_eq!(s.makespan(), 7);
        assert_eq!(s.start(x), Some(0));
        assert_eq!(s.idle_slots(&m), vec![5]);
        assert_eq!(s.start(a), Some(6));
        validate_schedule(&g, &g.all_nodes(), &m, s, Some(d.as_slice())).unwrap();
    }

    #[test]
    fn infeasible_deadline_detected() {
        let (g, [x, ..]) = fig1();
        let m = MachineModel::single_unit(2);
        let mut d = Deadlines::uniform(&g, &g.all_nodes(), 7);
        d.set(x, 0); // x can never complete by time 0
        let mut ctx = SchedCtx::new();
        // Ranks always compute (they are priorities)…
        assert!(compute_ranks(&mut ctx, &g, &g.all_nodes(), &m, &d, &SchedOpts::default()).is_ok());
        // …but the greedy schedule's deadline check reports infeasibility.
        assert!(matches!(
            rank_schedule(&mut ctx, &g, &g.all_nodes(), &m, &d, &SchedOpts::default()),
            Err(RankError::Infeasible { .. })
        ));
    }

    #[test]
    fn tight_but_feasible_deadlines() {
        // Chain a -(0)-> b: both can complete by 2.
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 0);
        let m = MachineModel::single_unit(2);
        let d = Deadlines::uniform(&g, &g.all_nodes(), 2);
        let mut ctx = SchedCtx::new();
        let out =
            rank_schedule(&mut ctx, &g, &g.all_nodes(), &m, &d, &SchedOpts::default()).unwrap();
        assert_eq!(out.schedule.makespan(), 2);
        assert_eq!(out.ranks[a.index()], 1);
        assert_eq!(out.ranks[b.index()], 2);
    }

    #[test]
    fn rank_respects_mask() {
        let (g, [x, e, w, b, a, _r]) = fig1();
        let m = MachineModel::single_unit(2);
        // Schedule only {x, w, a}: chain with latency 1 => makespan 5.
        let mask: NodeSet = NodeSet::from_iter_with_universe(g.len(), [x, w, a]);
        let mut ctx = SchedCtx::new();
        let s = rank_schedule_default(&mut ctx, &g, &mask, &m).unwrap();
        assert_eq!(s.makespan(), 5);
        assert_eq!(s.num_scheduled(), 3);
        let _ = (e, b);
    }

    #[test]
    fn default_schedule_is_optimal_on_restricted_case() {
        // Cross-check against brute force on Figure 1.
        let (g, _) = fig1();
        let m = MachineModel::single_unit(2);
        let mut ctx = SchedCtx::new();
        let s = rank_schedule_default(&mut ctx, &g, &g.all_nodes(), &m).unwrap();
        let opt = crate::brute::optimal_makespan(&g, &g.all_nodes(), &m);
        assert_eq!(s.makespan(), opt);
    }

    #[test]
    fn multi_unit_heuristic_is_valid() {
        let (g, _) = fig1();
        let m = MachineModel::uniform(2, 2);
        let mut ctx = SchedCtx::new();
        let s = rank_schedule_default(&mut ctx, &g, &g.all_nodes(), &m).unwrap();
        validate_schedule(&g, &g.all_nodes(), &m, &s, None).unwrap();
        // Two units can't be slower than one.
        assert!(s.makespan() <= 7);
    }

    #[test]
    fn piecewise_mode_equals_whole_on_single_unit() {
        let (g, _) = fig1();
        let m = MachineModel::single_unit(2);
        let d = Deadlines::uniform(&g, &g.all_nodes(), 100);
        let mut ctx = SchedCtx::new();
        let whole = compute_ranks(&mut ctx, &g, &g.all_nodes(), &m, &d, &SchedOpts::default())
            .unwrap()
            .to_vec();
        let piece = compute_ranks(
            &mut ctx,
            &g,
            &g.all_nodes(),
            &m,
            &d,
            &SchedOpts::default().with_backward(BackwardMode::Piecewise),
        )
        .unwrap()
        .to_vec();
        assert_eq!(whole, piece);
    }

    #[test]
    fn piecewise_ranks_never_tighter_than_whole() {
        // A multi-unit machine with a multi-cycle descendant: whole
        // insertion commits the 3-cycle op to one unit (start = rank-3),
        // piecewise spreads the pieces (start >= rank-2), so the
        // ancestor's piecewise rank is no smaller.
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let long = g.add_simple("long", BlockId(0));
        g.node_mut(long).exec_time = 3;
        g.add_dep(a, long, 0);
        let m = MachineModel::uniform(3, 2);
        let d = Deadlines::uniform(&g, &g.all_nodes(), 10);
        let mut ctx = SchedCtx::new();
        let whole = compute_ranks(&mut ctx, &g, &g.all_nodes(), &m, &d, &SchedOpts::default())
            .unwrap()
            .to_vec();
        let piece = compute_ranks(
            &mut ctx,
            &g,
            &g.all_nodes(),
            &m,
            &d,
            &SchedOpts::default().with_backward(BackwardMode::Piecewise),
        )
        .unwrap()
        .to_vec();
        for id in g.node_ids() {
            assert!(
                piece[id.index()] >= whole[id.index()],
                "piecewise must be the looser (sound) bound for {id}"
            );
        }
        // Concretely: whole places `long` at [7,10) so a <= 7; piecewise
        // places three pieces at [9,10) on three units so a <= 9.
        assert_eq!(whole[a.index()], 7);
        assert_eq!(piece[a.index()], 9);
    }

    #[test]
    fn piecewise_schedule_is_valid() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("div", BlockId(0));
        g.node_mut(b).exec_time = 4;
        let c = g.add_simple("c", BlockId(0));
        g.add_dep(a, b, 1);
        g.add_dep(b, c, 2);
        let m = MachineModel::uniform(2, 2);
        let d = Deadlines::unbounded(&g, &g.all_nodes());
        let mut ctx = SchedCtx::new();
        let out = rank_schedule(
            &mut ctx,
            &g,
            &g.all_nodes(),
            &m,
            &d,
            &SchedOpts::default().with_backward(BackwardMode::Piecewise),
        )
        .unwrap();
        asched_graph::validate::validate_schedule(&g, &g.all_nodes(), &m, &out.schedule, None)
            .unwrap();
    }

    #[test]
    fn cyclic_graph_rejected() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 0);
        g.add_dep(b, a, 0);
        let m = MachineModel::single_unit(2);
        let mut ctx = SchedCtx::new();
        assert!(matches!(
            rank_schedule_default(&mut ctx, &g, &g.all_nodes(), &m),
            Err(RankError::Cyclic(_))
        ));
    }

    #[test]
    fn warm_context_is_bit_identical_to_fresh() {
        // The analysis cache and scratch reuse are pure caching: every
        // call must produce the same bytes as a fresh context.
        let (g, _) = fig1();
        let m = MachineModel::single_unit(2);
        let d = Deadlines::uniform(&g, &g.all_nodes(), 100);
        let mut warm = SchedCtx::new();
        let baseline =
            rank_schedule(&mut warm, &g, &g.all_nodes(), &m, &d, &SchedOpts::default()).unwrap();
        for _ in 0..3 {
            let again = rank_schedule(&mut warm, &g, &g.all_nodes(), &m, &d, &SchedOpts::default())
                .unwrap();
            assert_eq!(again.schedule, baseline.schedule);
            assert_eq!(again.ranks, baseline.ranks);
            assert_eq!(again.priority, baseline.priority);
        }
        assert!(warm.cache.hits() >= 3, "repeat calls must hit the cache");
    }
}
