//! Seeded random dependence graphs.

use asched_graph::{BlockId, DepGraph, DepKind, FuClass, NodeData, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for random graph generation.
#[derive(Clone, Debug)]
pub struct DagParams {
    /// Total node count.
    pub nodes: usize,
    /// Number of basic blocks (nodes are split into contiguous groups of
    /// roughly equal size).
    pub blocks: usize,
    /// Probability of an edge between two nodes of the same block (only
    /// forward in index order, with distance decay).
    pub edge_prob: f64,
    /// Probability of an edge between nodes of adjacent blocks.
    pub cross_prob: f64,
    /// Maximum edge latency; each edge draws uniformly from
    /// `0..=max_latency`.
    pub max_latency: u32,
    /// Maximum execution time; each node draws uniformly from
    /// `1..=max_exec`.
    pub max_exec: u32,
    /// Fraction of nodes given a concrete [`FuClass`] (0.0 = all `Any`).
    pub class_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DagParams {
    fn default() -> Self {
        DagParams {
            nodes: 24,
            blocks: 3,
            edge_prob: 0.25,
            cross_prob: 0.1,
            max_latency: 1,
            max_exec: 1,
            class_fraction: 0.0,
            seed: 0xA5C4ED,
        }
    }
}

/// Generate a random trace graph: blocks of instructions with forward
/// intra-block and cross-block edges. Always acyclic.
pub fn random_trace_dag(p: &DagParams) -> DepGraph {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut g = DepGraph::new();
    assert!(p.blocks >= 1 && p.nodes >= p.blocks, "bad shape parameters");
    let per = p.nodes.div_ceil(p.blocks);
    let classes = [FuClass::Fixed, FuClass::Float, FuClass::Memory];
    let mut block_of = Vec::with_capacity(p.nodes);
    for i in 0..p.nodes {
        let blk = (i / per).min(p.blocks - 1);
        block_of.push(blk);
        let class = if rng.gen_bool(p.class_fraction.clamp(0.0, 1.0)) {
            classes[rng.gen_range(0..classes.len())]
        } else {
            FuClass::Any
        };
        g.add_node(NodeData {
            label: format!("n{i}"),
            exec_time: rng.gen_range(1..=p.max_exec.max(1)),
            class,
            block: BlockId(blk as u32),
            source_pos: (i - blk * per) as u32,
        });
    }
    for i in 0..p.nodes {
        for j in (i + 1)..p.nodes {
            let same = block_of[i] == block_of[j];
            let adjacent = block_of[j] == block_of[i] + 1;
            let base = if same {
                p.edge_prob
            } else if adjacent {
                p.cross_prob
            } else {
                continue;
            };
            // Distance decay keeps long graphs sparse.
            let dist = (j - i) as f64;
            let prob = (base / dist.sqrt()).clamp(0.0, 1.0);
            if rng.gen_bool(prob) {
                let lat = rng.gen_range(0..=p.max_latency);
                g.add_edge(NodeId(i as u32), NodeId(j as u32), lat, 0, DepKind::Data);
            }
        }
    }
    g
}

/// Generate a random single-block loop body: a trace graph over one
/// block plus `lc_edges` random loop-carried (distance-1) edges.
pub fn random_loop_dag(p: &DagParams, lc_edges: usize) -> DepGraph {
    let mut single = p.clone();
    single.blocks = 1;
    let mut g = random_trace_dag(&single);
    let mut rng = StdRng::seed_from_u64(p.seed ^ 0x10C0);
    for _ in 0..lc_edges {
        let src = NodeId(rng.gen_range(0..p.nodes) as u32);
        let dst = NodeId(rng.gen_range(0..p.nodes) as u32);
        let lat = rng.gen_range(0..=p.max_latency.max(1));
        g.add_edge(src, dst, lat, 1, DepKind::Data);
    }
    g
}

/// Parameters for [`seam_trace`].
#[derive(Clone, Debug)]
pub struct SeamParams {
    /// Number of basic blocks.
    pub blocks: usize,
    /// Independent filler instructions per block.
    pub fillers: usize,
    /// Latency of the cross-block (seam) dependences.
    pub seam_latency: u32,
    /// Latency of the intra-block chains.
    pub chain_latency: u32,
    /// RNG seed (perturbs which filler the chains hang off).
    pub seed: u64,
}

impl Default for SeamParams {
    fn default() -> Self {
        SeamParams {
            blocks: 4,
            fillers: 3,
            seam_latency: 3,
            chain_latency: 2,
            seed: 0x5EA0,
        }
    }
}

/// A structured trace with *seams*: each block ends (in source order)
/// with a producer whose value the **next block's first instructions**
/// consume after `seam_latency` cycles — the generalization of the
/// paper's Figure 2 (`w -> z`).
///
/// A loop-blind scheduler has no reason to hoist the producer, so the
/// next block stalls at the seam; anticipatory scheduling pulls the
/// producer early and delays the block's idle slots to the boundary,
/// letting the lookahead window hide the latency. This is the workload
/// family where the paper's mechanism has the most room to act.
pub fn seam_trace(p: &SeamParams) -> DepGraph {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut g = DepGraph::new();
    let mut prev_producer: Option<NodeId> = None;
    for blk in 0..p.blocks {
        let block = BlockId(blk as u32);
        let mut pos = 0u32;
        let add = |g: &mut DepGraph, label: String, pos: &mut u32| {
            let id = g.add_node(NodeData {
                label,
                exec_time: 1,
                class: FuClass::Any,
                block,
                source_pos: *pos,
            });
            *pos += 1;
            id
        };
        // Consumers of the previous block's seam producer come first in
        // source order (they head the block).
        let head = add(&mut g, format!("h{blk}"), &mut pos);
        let head2 = add(&mut g, format!("i{blk}"), &mut pos);
        if let Some(prod) = prev_producer {
            g.add_edge(prod, head, p.seam_latency, 0, DepKind::Data);
            g.add_edge(prod, head2, p.seam_latency, 0, DepKind::Data);
        }
        // Fillers (independent work the window can pull forward).
        let mut fillers = Vec::new();
        for fi in 0..p.fillers {
            fillers.push(add(&mut g, format!("f{blk}_{fi}"), &mut pos));
        }
        // An intra-block chain: the head and one filler feed a consumer
        // placed after the fillers (source order stays dependence-valid).
        let c1 = add(&mut g, format!("c{blk}"), &mut pos);
        g.add_edge(head, c1, p.chain_latency, 0, DepKind::Data);
        if let Some(&f) = fillers.get(rng.gen_range(0..p.fillers.max(1))) {
            g.add_edge(f, c1, 0, 0, DepKind::Data);
        }
        // The seam producer sits LAST in source order: a loop-blind
        // scheduler with source-order tie-breaking emits it late.
        let producer = add(&mut g, format!("p{blk}"), &mut pos);
        prev_producer = Some(producer);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::topo_order;

    #[test]
    fn deterministic_for_same_seed() {
        let p = DagParams::default();
        let g1 = random_trace_dag(&p);
        let g2 = random_trace_dag(&p);
        assert_eq!(g1.len(), g2.len());
        let e1: Vec<_> = g1.edges().map(|e| (e.src, e.dst, e.latency)).collect();
        let e2: Vec<_> = g2.edges().map(|e| (e.src, e.dst, e.latency)).collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn different_seeds_differ() {
        let p1 = DagParams::default();
        let p2 = DagParams {
            seed: 99,
            ..DagParams::default()
        };
        let e1: Vec<_> = random_trace_dag(&p1)
            .edges()
            .map(|e| (e.src, e.dst))
            .collect();
        let e2: Vec<_> = random_trace_dag(&p2)
            .edges()
            .map(|e| (e.src, e.dst))
            .collect();
        assert_ne!(e1, e2);
    }

    #[test]
    fn always_acyclic_and_block_partitioned() {
        for seed in 0..20 {
            let p = DagParams {
                nodes: 30,
                blocks: 4,
                edge_prob: 0.4,
                cross_prob: 0.2,
                max_latency: 3,
                seed,
                ..DagParams::default()
            };
            let g = random_trace_dag(&p);
            assert!(topo_order(&g, &g.all_nodes()).is_ok(), "seed {seed}");
            assert_eq!(g.blocks().len(), 4);
        }
    }

    #[test]
    fn latencies_within_bound() {
        let p = DagParams {
            max_latency: 2,
            edge_prob: 0.8,
            ..DagParams::default()
        };
        let g = random_trace_dag(&p);
        assert!(g.edges().all(|e| e.latency <= 2));
        assert!(g.edges().count() > 0);
    }

    #[test]
    fn loop_dag_has_loop_carried_edges() {
        let p = DagParams {
            nodes: 10,
            ..DagParams::default()
        };
        let g = random_loop_dag(&p, 3);
        assert_eq!(g.loop_carried_edges().count(), 3);
        // The LI subgraph stays acyclic.
        assert!(topo_order(&g, &g.all_nodes()).is_ok());
    }

    #[test]
    fn seam_trace_has_seam_edges() {
        let g = seam_trace(&SeamParams::default());
        assert_eq!(g.blocks().len(), 4);
        // Every non-final block exports a producer to the next block.
        let cross = g
            .edges()
            .filter(|e| g.node(e.src).block != g.node(e.dst).block)
            .count();
        assert_eq!(cross, 2 * 3);
        assert!(asched_graph::topo_order(&g, &g.all_nodes()).is_ok());
    }

    #[test]
    fn classes_assigned_when_requested() {
        let p = DagParams {
            class_fraction: 1.0,
            ..DagParams::default()
        };
        let g = random_trace_dag(&p);
        assert!(g.node_ids().all(|id| g.node(id).class != FuClass::Any));
    }
}
