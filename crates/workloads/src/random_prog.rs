//! Seeded random IR programs.
//!
//! Unlike [`crate::random_dag`], these exercise the *dependence
//! analysis*: programs are built from real instructions over a register
//! pool, with loads/stores into named regions and (for loops)
//! accumulator recurrences.

use asched_ir::{Inst, MemRef, Opcode, Program, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for random program generation.
#[derive(Clone, Debug)]
pub struct ProgParams {
    /// Number of basic blocks.
    pub blocks: usize,
    /// Instructions per block (excluding the terminating branch).
    pub insts_per_block: usize,
    /// Size of the general-purpose register pool.
    pub regs: u8,
    /// Fraction of instructions that are memory operations.
    pub mem_fraction: f64,
    /// Fraction of instructions that are multiplies (latency-heavy).
    pub mul_fraction: f64,
    /// Generate a loop (with accumulator recurrences) instead of a
    /// trace.
    pub is_loop: bool,
    /// Number of accumulator registers (`acc = acc op x`) when
    /// generating loops — these create loop-carried dependences.
    pub accumulators: usize,
    /// End each block with a compare + conditional branch.
    pub with_branches: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProgParams {
    fn default() -> Self {
        ProgParams {
            blocks: 2,
            insts_per_block: 10,
            regs: 12,
            mem_fraction: 0.3,
            mul_fraction: 0.15,
            is_loop: false,
            accumulators: 2,
            with_branches: true,
            seed: 0x9E3779B9,
        }
    }
}

/// Generate a random program.
pub fn random_program(p: &ProgParams) -> Program {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut b = if p.is_loop {
        ProgramBuilder::new_loop()
    } else {
        ProgramBuilder::new_trace()
    };
    let gpr = |n: u8| Reg::Gpr(n % 32);
    let pool: Vec<Reg> = (0..p.regs).map(gpr).collect();
    // Reserve the top of the pool for induction bases and accumulators.
    let bases: Vec<Reg> = (0..2u8).map(|i| gpr(p.regs + i)).collect();
    let accs: Vec<Reg> = (0..p.accumulators as u8)
        .map(|i| gpr(p.regs + 2 + i))
        .collect();
    let regions = ["x", "y", "z"];

    for bi in 0..p.blocks {
        b = b.block(format!("B{bi}"));
        for k in 0..p.insts_per_block {
            let pick = |rng: &mut StdRng, v: &[Reg]| v[rng.gen_range(0..v.len())];
            let roll: f64 = rng.gen();
            let inst = if roll < p.mem_fraction / 2.0 {
                // Load through an induction base.
                let d = pick(&mut rng, &pool);
                let base = pick(&mut rng, &bases);
                Inst {
                    op: Opcode::LoadU,
                    defs: vec![d, base],
                    uses: vec![],
                    mem: Some(MemRef {
                        region: regions[rng.gen_range(0..regions.len())].into(),
                        base,
                        offset: 4,
                    }),
                }
            } else if roll < p.mem_fraction {
                let v = pick(&mut rng, &pool);
                let base = pick(&mut rng, &bases);
                Inst {
                    op: Opcode::Store,
                    defs: vec![],
                    uses: vec![v],
                    mem: Some(MemRef {
                        region: regions[rng.gen_range(0..regions.len())].into(),
                        base,
                        offset: (k as i64) * 4,
                    }),
                }
            } else {
                let op = if rng.gen_bool(p.mul_fraction.clamp(0.0, 1.0)) {
                    Opcode::Mul
                } else {
                    Opcode::Add
                };
                // Occasionally target an accumulator to create a
                // recurrence (loop-carried when the program is a loop).
                let use_acc = p.is_loop && !accs.is_empty() && rng.gen_bool(0.3);
                let (d, a) = if use_acc {
                    let acc = pick(&mut rng, &accs);
                    (acc, acc)
                } else {
                    (pick(&mut rng, &pool), pick(&mut rng, &pool))
                };
                Inst {
                    op,
                    defs: vec![d],
                    uses: vec![a, pick(&mut rng, &pool)],
                    mem: None,
                }
            };
            b = b.push(inst);
        }
        if p.with_branches {
            let cr = Reg::Cr((bi % 8) as u8);
            let t = pool[rng.gen_range(0..pool.len())];
            b = b.cmp(cr, t).branch_on(cr);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_ir::{build_loop_graph, build_trace_graph, LatencyModel};

    #[test]
    fn deterministic() {
        let p = ProgParams::default();
        assert_eq!(random_program(&p), random_program(&p));
    }

    #[test]
    fn respects_shape_parameters() {
        let p = ProgParams {
            blocks: 3,
            insts_per_block: 7,
            with_branches: true,
            ..ProgParams::default()
        };
        let prog = random_program(&p);
        assert_eq!(prog.blocks.len(), 3);
        for b in &prog.blocks {
            assert_eq!(b.len(), 9); // 7 + cmp + bt
            assert!(b.insts.last().unwrap().op.is_branch());
        }
    }

    #[test]
    fn trace_graph_builds_and_is_acyclic() {
        for seed in 0..10 {
            let p = ProgParams {
                seed,
                ..ProgParams::default()
            };
            let prog = random_program(&p);
            let g = build_trace_graph(&prog, &LatencyModel::restricted_01());
            assert!(asched_graph::topo_order(&g, &g.all_nodes()).is_ok());
            assert_eq!(g.len(), prog.num_insts());
        }
    }

    #[test]
    fn loops_have_recurrences() {
        let p = ProgParams {
            is_loop: true,
            accumulators: 2,
            insts_per_block: 16,
            blocks: 1,
            seed: 7,
            ..ProgParams::default()
        };
        let prog = random_program(&p);
        let g = build_loop_graph(&prog, &LatencyModel::fig3());
        assert!(g.has_loop_carried());
    }

    #[test]
    fn textual_roundtrip() {
        let prog = random_program(&ProgParams::default());
        let text = asched_ir::format_program(&prog);
        let again = asched_ir::parse_program(&text).unwrap();
        assert_eq!(prog, again);
    }
}
