//! Fixed numeric kernels written in IR text.
//!
//! The workloads the paper's introduction motivates: small numeric loops
//! where the compiler's within-block schedule decides how much of the
//! machine's latency can be hidden.

use asched_ir::{parse_program, Program};

/// `s += x[i] * y[i]` — a dot-product loop with a multiply-accumulate
/// recurrence.
pub fn dot_product() -> Program {
    parse_program(
        r#"
        loop {
          block DOT {
            l4u gr2, gr1 = x[gr1, 4]
            l4u gr4, gr3 = y[gr3, 4]
            mul gr5 = gr2, gr4
            add gr6 = gr6, gr5
            c4  cr1 = gr1, 0
            bt  cr1
          }
        }
        "#,
    )
    .expect("dot product parses")
}

/// `y[i] = a * x[i] + y[i]` — daxpy.
pub fn daxpy() -> Program {
    parse_program(
        r#"
        loop {
          block DAXPY {
            l4u gr2, gr1 = x[gr1, 4]
            l4  gr4 = y[gr3]
            mul gr5 = gr7, gr2
            add gr6 = gr5, gr4
            st4u gr3, y[gr3, 4] = gr6
            c4  cr1 = gr1, 0
            bt  cr1
          }
        }
        "#,
    )
    .expect("daxpy parses")
}

/// Horner evaluation step: `acc = acc * x + c[i]` — a tight multiply
/// recurrence that bounds any schedule's steady state.
pub fn horner() -> Program {
    parse_program(
        r#"
        loop {
          block HORNER {
            l4u gr2, gr1 = c[gr1, 4]
            mul gr5 = gr5, gr6
            add gr5 = gr5, gr2
            c4  cr1 = gr1, 0
            bt  cr1
          }
        }
        "#,
    )
    .expect("horner parses")
}

/// A 3-tap FIR filter: plenty of independent work per iteration.
pub fn fir3() -> Program {
    parse_program(
        r#"
        loop {
          block FIR {
            l4u gr2, gr1 = x[gr1, 4]
            mul gr10 = gr2, gr20
            mul gr11 = gr3, gr21
            mul gr12 = gr4, gr22
            add gr13 = gr10, gr11
            add gr14 = gr13, gr12
            mr  gr4 = gr3
            mr  gr3 = gr2
            st4u gr5, y[gr5, 4] = gr14
            c4  cr1 = gr1, 0
            bt  cr1
          }
        }
        "#,
    )
    .expect("fir3 parses")
}

/// The paper's Figure 3 partial-products loop (re-exported here so the
/// kernel suite covers it).
pub fn partial_products() -> Program {
    crate::fixtures::fig3_program()
}

/// A two-block loop: a load/compute block followed by a store/branch
/// block (exercises Section 5.1).
pub fn two_block_loop() -> Program {
    parse_program(
        r#"
        loop {
          block HEAD {
            l4u gr2, gr1 = x[gr1, 4]
            mul gr3 = gr2, gr8
            c4  cr1 = gr2, 0
            bt  cr1
          }
          block TAIL {
            add gr4 = gr3, gr9
            st4u gr5, y[gr5, 4] = gr4
          }
        }
        "#,
    )
    .expect("two_block_loop parses")
}

/// A two-block loop whose TAIL produces (late, in source order) a value
/// the next iteration's HEAD needs after the multiply latency — the
/// Section 5.1 wrap-around situation: only the BBm-vs-next-BB1 step can
/// see that the producer should be hoisted within TAIL.
pub fn wrap_loop() -> Program {
    parse_program(
        r#"
        loop {
          block HEAD {
            add gr4 = gr3, gr9
            mul gr6 = gr4, gr8
            add gr10 = gr9, gr9
            c4  cr1 = gr4, 0
            bt  cr1
          }
          block TAIL {
            l4u gr2, gr1 = x[gr1, 4]
            add gr11 = gr10, gr9
            add gr12 = gr11, gr9
            mul gr3 = gr2, gr7
            st4u gr5, y[gr5, 4] = gr6
          }
        }
        "#,
    )
    .expect("wrap_loop parses")
}

/// A 3-point stencil: `y[i] = (x[i-1] + x[i] + x[i+1]) * w` — loads at
/// three offsets from one updated base, so the memory disambiguator's
/// same-base/different-offset rule is what keeps the body parallel.
pub fn stencil3() -> Program {
    parse_program(
        r#"
        loop {
          block STEN {
            l4  gr2 = x[gr1]
            l4  gr3 = x[gr1, 4]
            l4  gr4 = x[gr1, 8]
            add gr5 = gr2, gr3
            add gr5 = gr5, gr4
            mul gr6 = gr5, gr9
            st4u gr7, y[gr7, 4] = gr6
            add gr1 = gr1, gr8
            c4  cr1 = gr1, 0
            bt  cr1
          }
        }
        "#,
    )
    .expect("stencil3 parses")
}

/// A balanced reduction tree over eight loads (a wide, latency-tolerant
/// trace block: lots of independent work for the window).
pub fn reduction8() -> Program {
    parse_program(
        r#"
        trace {
          block RED8 {
            l4  gr1 = a[gr30]
            l4  gr2 = a[gr30, 4]
            l4  gr3 = a[gr30, 8]
            l4  gr4 = a[gr30, 12]
            l4  gr5 = a[gr30, 16]
            l4  gr6 = a[gr30, 20]
            l4  gr7 = a[gr30, 24]
            l4  gr8 = a[gr30, 28]
            add gr11 = gr1, gr2
            add gr12 = gr3, gr4
            add gr13 = gr5, gr6
            add gr14 = gr7, gr8
            add gr21 = gr11, gr12
            add gr22 = gr13, gr14
            add gr23 = gr21, gr22
          }
          block OUT {
            st4 b[gr31] = gr23
          }
        }
        "#,
    )
    .expect("reduction8 parses")
}

/// Straight-line expression-tree block followed by a dependent reduction
/// block (a trace workload).
pub fn expr_trace() -> Program {
    parse_program(
        r#"
        trace {
          block EXPR {
            l4  gr1 = a[gr30]
            l4  gr2 = a[gr30, 4]
            l4  gr3 = a[gr30, 8]
            l4  gr4 = a[gr30, 12]
            mul gr5 = gr1, gr2
            mul gr6 = gr3, gr4
            add gr7 = gr5, gr6
            c4  cr1 = gr7, 0
            bt  cr1
          }
          block RED {
            add gr8 = gr7, gr9
            mul gr10 = gr8, gr8
            st4 b[gr31] = gr10
          }
        }
        "#,
    )
    .expect("expr_trace parses")
}

/// All kernels with names, for sweeping in experiments.
pub fn all_kernels() -> Vec<(&'static str, Program)> {
    vec![
        ("dot", dot_product()),
        ("daxpy", daxpy()),
        ("horner", horner()),
        ("fir3", fir3()),
        ("pprod", partial_products()),
        ("2blk", two_block_loop()),
        ("wrap2", wrap_loop()),
        ("sten3", stencil3()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_ir::{build_loop_graph, LatencyModel};

    #[test]
    fn all_kernels_parse_and_analyse() {
        for (name, prog) in all_kernels() {
            let g = build_loop_graph(&prog, &LatencyModel::fig3());
            assert!(g.len() >= 4, "{name} too small");
            assert!(
                asched_graph::topo_order(&g, &g.all_nodes()).is_ok(),
                "{name} loop-independent subgraph must be acyclic"
            );
        }
    }

    #[test]
    fn recurrences_present_where_expected() {
        for (name, prog) in [("dot", dot_product()), ("horner", horner())] {
            let g = build_loop_graph(&prog, &LatencyModel::fig3());
            assert!(g.has_loop_carried(), "{name} must have a recurrence");
        }
    }

    #[test]
    fn stencil_loads_stay_independent() {
        // The three x-loads read distinct offsets off the same base
        // version: no memory edges among them.
        let g = build_loop_graph(&stencil3(), &LatencyModel::fig3());
        let mem_edges = g
            .edges()
            .filter(|e| e.kind == asched_graph::DepKind::Memory)
            .count();
        assert_eq!(mem_edges, 0);
    }

    #[test]
    fn reduction8_is_wide() {
        let g = asched_ir::build_trace_graph(&reduction8(), &LatencyModel::fig3());
        // Depth: load (1+1) + 3 adds = critical path far below n.
        let cp = asched_graph::critical_path_length(&g, &g.all_nodes()).unwrap();
        assert!(cp <= 7, "tree reduction must be shallow, got {cp}");
        assert_eq!(g.len(), 16);
    }

    #[test]
    fn expr_trace_is_a_trace() {
        let p = expr_trace();
        assert_eq!(p.kind, asched_ir::ProgramKind::Trace);
        assert_eq!(p.blocks.len(), 2);
    }

    #[test]
    fn horner_recurrence_cycle() {
        // acc = acc * x + c: the recurrence cycle is mul -(4,0)-> add
        // -(0,1)-> mul, binding the steady state to ~6 cycles/iter.
        let g = build_loop_graph(&horner(), &LatencyModel::fig3());
        let m = g.find("mul").unwrap();
        let a = g.find("add").unwrap();
        assert!(g
            .out_edges(m)
            .iter()
            .any(|e| e.dst == a && e.latency == 4 && e.distance == 0));
        assert!(g.out_edges(a).iter().any(|e| e.dst == m && e.distance == 1));
    }
}
