//! The paper's figures as reusable fixtures.

use asched_graph::{BlockId, DepGraph, DepKind, NodeId};
use asched_ir::{parse_program, LatencyModel, Program};

/// Expected makespan of Figure 1's block on one unit.
pub const FIG1_MAKESPAN: u64 = 7;
/// Expected idle-slot position before delaying (paper Section 2.1).
pub const FIG1_IDLE_BEFORE: u64 = 2;
/// Expected idle-slot position after delaying (paper Section 2.2).
pub const FIG1_IDLE_AFTER: u64 = 5;
/// Expected merged makespan of Figure 2's two blocks at W = 2.
pub const FIG2_MAKESPAN: u64 = 11;
/// Figure 3 schedule 1: single-iteration makespan / steady-state period.
pub const FIG3_SCHED1: (u64, u64) = (5, 7);
/// Figure 3 schedule 2: single-iteration makespan / steady-state period.
pub const FIG3_SCHED2: (u64, u64) = (6, 6);
/// Figure 8: steady-state periods of S1 (1 2 3) and S2 (2 1 3).
pub const FIG8_PERIODS: (u64, u64) = (5, 4);

/// Figure 1's basic block BB1: `x→{w,b,r}`, `e→{w,b}`, `w→a`, `b→a`,
/// all latency 1, unit execution times. Returns the graph and the nodes
/// `[x, e, w, b, a, r]`. Insertion order makes rank ties break exactly
/// as in the paper's walk-through.
pub fn fig1() -> (DepGraph, [NodeId; 6]) {
    let mut g = DepGraph::new();
    let e = g.add_simple("e", BlockId(0));
    let x = g.add_simple("x", BlockId(0));
    let b = g.add_simple("b", BlockId(0));
    let w = g.add_simple("w", BlockId(0));
    let a = g.add_simple("a", BlockId(0));
    let r = g.add_simple("r", BlockId(0));
    for &(s, t) in &[(x, w), (x, b), (x, r), (e, w), (e, b), (w, a), (b, a)] {
        g.add_dep(s, t, 1);
    }
    (g, [x, e, w, b, a, r])
}

/// Figure 2: BB1 (Figure 1) followed by BB2 (`z→q` lat 1, `q→p` lat 0,
/// `p→v` lat 1, `z→g` lat 1) plus the cross-block edge `w→z` lat 1.
/// Returns the graph, BB1's nodes `[x,e,w,b,a,r]` and BB2's
/// `[z,q,p,v,g]`.
pub fn fig2() -> (DepGraph, [NodeId; 6], [NodeId; 5]) {
    let (mut g, bb1) = fig1();
    let [_, _, w, ..] = bb1;
    let z = g.add_simple("z", BlockId(1));
    let q = g.add_simple("q", BlockId(1));
    let p = g.add_simple("p", BlockId(1));
    let v = g.add_simple("v", BlockId(1));
    let gg = g.add_simple("g", BlockId(1));
    g.add_dep(z, q, 1);
    g.add_dep(q, p, 0);
    g.add_dep(p, v, 1);
    g.add_dep(z, gg, 1);
    g.add_dep(w, z, 1);
    (g, bb1, [z, q, p, v, gg])
}

/// Figure 3's partial-products loop as IR source text.
pub const FIG3_ASM: &str = r#"
# for (i=1; x[i] != 0; i++) y[i] = y[i-1] * x[i];
# (store software-pipelined from the previous iteration)
loop {
  block CL18 {
    l4u  gr6, gr7 = x[gr7, 4]      # load x[i], update index
    st4u gr5, y[gr5, 4] = gr0      # store y[i-1], update index
    c4   cr1 = gr6, 0              # compare x[i] with 0
    mul  gr0 = gr6, gr0            # y[i] = x[i] * y[i-1]
    bt   cr1                       # exit if x[i] == 0
  }
}
"#;

/// Figure 3's loop parsed from [`FIG3_ASM`].
pub fn fig3_program() -> Program {
    parse_program(FIG3_ASM).expect("FIG3_ASM parses")
}

/// Figure 3's dependence graph, built by the real dependence analysis
/// with the paper's latencies (load/compare 1, multiply 4).
pub fn fig3_graph() -> DepGraph {
    asched_ir::build_loop_graph(&fig3_program(), &LatencyModel::fig3())
}

/// A trace of `m` Figure-1-shaped blocks chained Figure-2 style: block
/// `k`'s `w` node feeds block `k+1`'s `z` node with latency 1 (and each
/// block has BB2's internal chain appended so both shapes repeat).
///
/// Each seam replays the paper's Figure 2 situation: an idle slot that
/// only moves to the block boundary under `Delay_Idle_Slots`, where the
/// next block's `z` can fill it. This is the workload where the E10
/// ablation isolates the idle-delaying ingredient.
pub fn fig2_chain(m: usize) -> DepGraph {
    let mut g = DepGraph::new();
    let mut prev_w: Option<NodeId> = None;
    for blk in 0..m {
        let b = BlockId(blk as u32);
        let e = g.add_simple(format!("e{blk}"), b);
        let x = g.add_simple(format!("x{blk}"), b);
        let bb = g.add_simple(format!("b{blk}"), b);
        let w = g.add_simple(format!("w{blk}"), b);
        let a = g.add_simple(format!("a{blk}"), b);
        let r = g.add_simple(format!("r{blk}"), b);
        for &(s, t) in &[(x, w), (x, bb), (x, r), (e, w), (e, bb), (w, a), (bb, a)] {
            g.add_dep(s, t, 1);
        }
        if let Some(pw) = prev_w {
            // The Figure 2 seam: previous block's w feeds this block's
            // first instruction... except the first instruction here is
            // e; use the paper's shape and let w feed x and e.
            g.add_dep(pw, e, 1);
            g.add_dep(pw, x, 1);
        }
        prev_w = Some(w);
    }
    g
}

/// Figure 8's three-node loop: `1 -(1)-> 3`, `2 -(1)-> 3`, loop-carried
/// `3 -(1, distance 1)-> 1`. Returns the graph and `[n1, n2, n3]`.
pub fn fig8() -> (DepGraph, [NodeId; 3]) {
    let mut g = DepGraph::new();
    let n1 = g.add_simple("1", BlockId(0));
    let n2 = g.add_simple("2", BlockId(0));
    let n3 = g.add_simple("3", BlockId(0));
    g.add_dep(n1, n3, 1);
    g.add_dep(n2, n3, 1);
    g.add_edge(n3, n1, 1, 1, DepKind::Data);
    (g, [n1, n2, n3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape() {
        let (g, _) = fig1();
        assert_eq!(g.len(), 6);
        assert_eq!(g.edges().count(), 7);
        assert!(!g.has_loop_carried());
    }

    #[test]
    fn fig2_extends_fig1() {
        let (g, bb1, bb2) = fig2();
        assert_eq!(g.len(), 11);
        assert_eq!(g.blocks().len(), 2);
        // The cross edge w -> z exists with latency 1.
        let w = bb1[2];
        let z = bb2[0];
        assert!(g.out_edges(w).iter().any(|e| e.dst == z && e.latency == 1));
    }

    #[test]
    fn fig3_program_and_graph() {
        let prog = fig3_program();
        assert_eq!(prog.num_insts(), 5);
        let g = fig3_graph();
        assert_eq!(g.len(), 5);
        assert!(g.has_loop_carried());
        // The M -> S <4,1> edge of the paper's figure.
        let m = g.find("mul").unwrap();
        let s = g.find("st4u").unwrap();
        assert!(g
            .out_edges(m)
            .iter()
            .any(|e| e.dst == s && e.latency == 4 && e.distance == 1));
    }

    #[test]
    fn fig2_chain_shape() {
        let g = fig2_chain(3);
        assert_eq!(g.blocks().len(), 3);
        assert_eq!(g.len(), 18);
        let cross = g
            .edges()
            .filter(|e| g.node(e.src).block != g.node(e.dst).block)
            .count();
        assert_eq!(cross, 4);
        assert!(asched_graph::topo_order(&g, &g.all_nodes()).is_ok());
    }

    #[test]
    fn fig8_shape() {
        let (g, [n1, _, n3]) = fig8();
        assert_eq!(g.len(), 3);
        assert_eq!(g.loop_carried_edges().count(), 1);
        assert!(g
            .out_edges(n3)
            .iter()
            .any(|e| e.dst == n1 && e.distance == 1));
    }
}
