//! Workload generators and paper fixtures.
//!
//! * [`fixtures`] — the exact dependence graphs/programs of the paper's
//!   Figures 1, 2, 3 and 8, with their expected results as constants.
//! * [`random_dag`] — seeded random trace/loop dependence graphs with
//!   controllable size, density, latency range and cross-block edges.
//! * [`random_prog`] — seeded random register-level programs in the
//!   `asched-ir` ISA (so the dependence *analysis* is exercised, not
//!   just the schedulers).
//! * [`kernels`] — small fixed numeric kernels (dot product, daxpy,
//!   Horner, FIR, prefix product) written in IR text.
//!
//! All randomness is `StdRng::seed_from_u64`-seeded: every experiment is
//! reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixtures;
pub mod kernels;
pub mod random_dag;
pub mod random_prog;

pub use random_dag::{random_loop_dag, random_trace_dag, seam_trace, DagParams, SeamParams};
pub use random_prog::{random_program, ProgParams};
