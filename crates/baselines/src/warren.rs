//! A Warren-style scheduler (IBM J. R&D 1990).
//!
//! Warren's algorithm — shipped in the RS/6000 product compiler — does
//! greedy scheduling on a prioritized list over an assigned-unit
//! machine. We model its priority as: critical-path height first, then
//! earliest total slack, then source order, with the greedy dispatcher
//! of `asched-rank` handling the unit assignment.

use crate::simple::{greedy, per_block};
use asched_graph::{heights, CycleError, DepGraph, MachineModel, NodeId};

/// Schedule each block Warren-style.
pub fn warren(g: &DepGraph, machine: &MachineModel) -> Result<Vec<Vec<NodeId>>, CycleError> {
    per_block(g, machine, |g, mask, machine| {
        let h = heights(g, mask)?;
        // Depth from the sources (latency-weighted earliest start).
        let order = asched_graph::topo_order(g, mask)?;
        let mut depth = vec![0u64; g.len()];
        for &x in &order {
            for e in g.out_edges_li(x) {
                if mask.contains(e.dst) {
                    let d = depth[x.index()] + g.exec_time(x) as u64 + e.latency as u64;
                    depth[e.dst.index()] = depth[e.dst.index()].max(d);
                }
            }
        }
        let cp = mask
            .iter()
            .map(|id| depth[id.index()] + h[id.index()])
            .max()
            .unwrap_or(0);
        // Slack: how much a node can slip without stretching the block.
        let slack = |id: NodeId| cp - (depth[id.index()] + h[id.index()]);
        let mut prio: Vec<NodeId> = mask.iter().collect();
        prio.sort_by(|&a, &b| {
            h[b.index()]
                .cmp(&h[a.index()])
                .then_with(|| slack(a).cmp(&slack(b)))
                .then_with(|| g.stable_key(a).cmp(&g.stable_key(b)))
        });
        Ok(greedy(g, mask, machine, &prio).order())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::validate::validate_schedule;
    use asched_graph::{BlockId, FuClass, NodeData};

    #[test]
    fn schedules_assigned_units() {
        let mut g = DepGraph::new();
        let mk = |g: &mut DepGraph, lab: &str, class, pos| {
            g.add_node(NodeData {
                label: lab.into(),
                exec_time: 1,
                class,
                block: BlockId(0),
                source_pos: pos,
            })
        };
        let f1 = mk(&mut g, "fadd", FuClass::Float, 0);
        let i1 = mk(&mut g, "add", FuClass::Fixed, 1);
        let l1 = mk(&mut g, "l4", FuClass::Memory, 2);
        let b1 = mk(&mut g, "bt", FuClass::Branch, 3);
        g.add_dep(l1, f1, 1);
        g.add_dep(f1, b1, 0);
        g.add_dep(i1, b1, 0);
        let m = MachineModel::rs6000_like(2);
        let orders = warren(&g, &m).unwrap();
        let s = crate::simple::greedy(&g, &g.all_nodes(), &m, &orders[0]);
        validate_schedule(&g, &g.all_nodes(), &m, &s, None).unwrap();
        // l4 (tallest chain) must issue in the first cycle; add can share
        // it on the fixed-point unit.
        assert_eq!(s.start(l1), Some(0));
        assert_eq!(s.start(i1), Some(0));
        assert_eq!(s.start(f1), Some(2)); // load latency 1
        assert_eq!(s.makespan(), 4);
    }

    #[test]
    fn low_slack_breaks_height_ties() {
        // Equal heights but different depths: the deeper (lower slack)
        // node is more urgent.
        let mut g = DepGraph::new();
        let root = g.add_simple("root", BlockId(0));
        let deep = g.add_simple("deep", BlockId(0)); // successor of root
        let flat = g.add_simple("flat", BlockId(0)); // free-floating
        g.add_dep(root, deep, 0);
        let m = MachineModel::single_unit(1);
        let orders = warren(&g, &m).unwrap();
        let pos = |n| orders[0].iter().position(|&x| x == n).unwrap();
        // heights: root 2, deep 1, flat 1. deep has slack 0; flat has
        // slack 1 -> deep before flat.
        assert!(pos(root) < pos(deep));
        assert!(pos(deep) < pos(flat));
    }
}
