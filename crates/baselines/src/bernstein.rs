//! A Bernstein–Gertner-style labelling (TOPLAS 1989).
//!
//! Bernstein & Gertner generalized the Coffman–Graham approach to a
//! single pipelined processor with latencies of 0 and 1: the label
//! comparison must account for *when* a successor's constraint bites.
//! We realize that idea by comparing successors by the pair
//! `(label, latency)` — a successor reached through a latency-1 edge is
//! more urgent than the same successor through a latency-0 edge — and
//! otherwise following the Coffman–Graham lexicographic discipline.
//! Bernstein–Gertner's full algorithm is optimal for 0/1 latencies on
//! one pipeline; this baseline reimplements its labelling *idea* and is
//! near-optimal there (within one cycle on thousands of random
//! instances — see the crate's property tests), which is what a
//! comparison baseline needs.

use crate::simple::{greedy, per_block};
use asched_graph::{CycleError, DepGraph, MachineModel, NodeId, NodeSet};

/// Labels (higher = schedule earlier), in the Bernstein–Gertner spirit.
fn labels(g: &DepGraph, mask: &NodeSet) -> Result<Vec<u64>, CycleError> {
    asched_graph::topo_order(g, mask)?;
    let n = mask.len();
    let mut label = vec![0u64; g.len()];
    let mut labelled = vec![false; g.len()];
    for next in 1..=n as u64 {
        let mut best: Option<(Vec<u64>, NodeId)> = None;
        for x in mask.iter() {
            if labelled[x.index()] {
                continue;
            }
            let succs = g.succs_in(x, mask);
            if succs.iter().any(|(s, _)| !labelled[s.index()]) {
                continue;
            }
            // Urgency-adjusted successor keys: latency-1 edges make the
            // successor effectively "one label more urgent".
            let mut ls: Vec<u64> = succs
                .iter()
                .map(|&(s, lat)| 2 * label[s.index()] + lat.min(1) as u64)
                .collect();
            ls.sort_unstable_by(|a, b| b.cmp(a));
            let better = match &best {
                None => true,
                Some((bl, bn)) => ls < *bl || (ls == *bl && g.stable_key(x) < g.stable_key(*bn)),
            };
            if better {
                best = Some((ls, x));
            }
        }
        let (_, x) = best.expect("acyclic graph always has a candidate");
        label[x.index()] = next;
        labelled[x.index()] = true;
    }
    Ok(label)
}

/// Schedule each block by the Bernstein–Gertner-style priority.
pub fn bernstein_gertner(
    g: &DepGraph,
    machine: &MachineModel,
) -> Result<Vec<Vec<NodeId>>, CycleError> {
    per_block(g, machine, |g, mask, machine| {
        let label = labels(g, mask)?;
        let mut prio: Vec<NodeId> = mask.iter().collect();
        prio.sort_by(|&a, &b| {
            label[b.index()]
                .cmp(&label[a.index()])
                .then_with(|| g.stable_key(a).cmp(&g.stable_key(b)))
        });
        Ok(greedy(g, mask, machine, &prio).order())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::BlockId;
    use asched_rank::brute::optimal_makespan;

    fn m1() -> MachineModel {
        MachineModel::single_unit(1)
    }

    #[test]
    fn latency_urgency_orders_producers_first() {
        // p feeds c via latency 1; q feeds c via latency 0. p should be
        // scheduled before q so the latency is hidden.
        let mut g = DepGraph::new();
        let q = g.add_simple("q", BlockId(0));
        let p = g.add_simple("p", BlockId(0));
        let c = g.add_simple("c", BlockId(0));
        g.add_dep(p, c, 1);
        g.add_dep(q, c, 0);
        let orders = bernstein_gertner(&g, &m1()).unwrap();
        let pos = |n| orders[0].iter().position(|&x| x == n).unwrap();
        assert!(pos(p) < pos(q), "latency-1 producer must go first");
        // Resulting schedule: p q c with no idle cycle = makespan 3.
        let s = crate::simple::greedy(&g, &g.all_nodes(), &m1(), &orders[0]);
        assert_eq!(s.makespan(), 3);
    }

    #[test]
    fn matches_optimum_on_small_01_instances() {
        // A handful of fixed 0/1-latency DAGs: BG should be optimal.
        let cases: Vec<fn() -> DepGraph> = vec![
            || {
                let mut g = DepGraph::new();
                let a = g.add_simple("a", BlockId(0));
                let b = g.add_simple("b", BlockId(0));
                let c = g.add_simple("c", BlockId(0));
                let d = g.add_simple("d", BlockId(0));
                g.add_dep(a, c, 1);
                g.add_dep(b, c, 0);
                g.add_dep(c, d, 1);
                g
            },
            || {
                let mut g = DepGraph::new();
                let s1 = g.add_simple("s1", BlockId(0));
                let s2 = g.add_simple("s2", BlockId(0));
                let m = g.add_simple("m", BlockId(0));
                let t = g.add_simple("t", BlockId(0));
                g.add_dep(s1, m, 1);
                g.add_dep(s2, m, 1);
                g.add_dep(m, t, 0);
                g
            },
        ];
        for mk in cases {
            let g = mk();
            let orders = bernstein_gertner(&g, &m1()).unwrap();
            let s = crate::simple::greedy(&g, &g.all_nodes(), &m1(), &orders[0]);
            let opt = optimal_makespan(&g, &g.all_nodes(), &m1());
            assert_eq!(s.makespan(), opt, "BG should match optimum");
        }
    }
}
