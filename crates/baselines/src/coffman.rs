//! Coffman–Graham labelling (Acta Informatica 1972).
//!
//! Optimal for two identical processors with unit execution times and no
//! latencies; in general a strong list-scheduling priority. Labels are
//! assigned 1..n, each time to a node whose successors are all labelled
//! and whose decreasing sequence of successor labels is lexicographically
//! smallest; scheduling priority is decreasing label.

use crate::simple::{greedy, per_block};
use asched_graph::{CycleError, DepGraph, MachineModel, NodeId, NodeSet};

/// Coffman–Graham labels for the nodes of `mask` (indexed by
/// `NodeId::index()`; unmasked entries are 0). Higher label = higher
/// scheduling priority.
pub fn coffman_graham_labels(g: &DepGraph, mask: &NodeSet) -> Result<Vec<u32>, CycleError> {
    // Cycle check up front (labels loop would otherwise spin).
    asched_graph::topo_order(g, mask)?;
    let n = mask.len();
    let mut label = vec![0u32; g.len()];
    let mut labelled = vec![false; g.len()];
    for next in 1..=n as u32 {
        // Candidates: unlabelled, all in-mask successors labelled.
        let mut best: Option<(Vec<u32>, NodeId)> = None;
        for x in mask.iter() {
            if labelled[x.index()] {
                continue;
            }
            let succs: Vec<NodeId> = g.succs_in(x, mask).into_iter().map(|(s, _)| s).collect();
            if succs.iter().any(|s| !labelled[s.index()]) {
                continue;
            }
            let mut ls: Vec<u32> = succs.iter().map(|s| label[s.index()]).collect();
            ls.sort_unstable_by(|a, b| b.cmp(a)); // decreasing
            let better = match &best {
                None => true,
                Some((bl, bn)) => ls < *bl || (ls == *bl && g.stable_key(x) < g.stable_key(*bn)),
            };
            if better {
                best = Some((ls, x));
            }
        }
        let (_, x) = best.expect("acyclic graph always has a labelling candidate");
        label[x.index()] = next;
        labelled[x.index()] = true;
    }
    Ok(label)
}

/// Schedule each block by Coffman–Graham priority (decreasing label).
pub fn coffman_graham(
    g: &DepGraph,
    machine: &MachineModel,
) -> Result<Vec<Vec<NodeId>>, CycleError> {
    per_block(g, machine, |g, mask, machine| {
        let label = coffman_graham_labels(g, mask)?;
        let mut prio: Vec<NodeId> = mask.iter().collect();
        prio.sort_by(|&a, &b| {
            label[b.index()]
                .cmp(&label[a.index()])
                .then_with(|| g.stable_key(a).cmp(&g.stable_key(b)))
        });
        Ok(greedy(g, mask, machine, &prio).order())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::BlockId;

    #[test]
    fn labels_respect_precedence() {
        // a -> b -> c: labels must decrease along the chain.
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let c = g.add_simple("c", BlockId(0));
        g.add_dep(a, b, 0);
        g.add_dep(b, c, 0);
        let l = coffman_graham_labels(&g, &g.all_nodes()).unwrap();
        assert!(l[a.index()] > l[b.index()]);
        assert!(l[b.index()] > l[c.index()]);
        assert_eq!(l[c.index()], 1);
    }

    #[test]
    fn classic_two_processor_example() {
        // A small two-processor instance where CG achieves the optimum:
        // a fork-join of 6 unit tasks on 2 processors.
        let mut g = DepGraph::new();
        let src = g.add_simple("src", BlockId(0));
        let mid: Vec<NodeId> = (0..4)
            .map(|i| g.add_simple(format!("m{i}"), BlockId(0)))
            .collect();
        let sink = g.add_simple("sink", BlockId(0));
        for &m in &mid {
            g.add_dep(src, m, 0);
            g.add_dep(m, sink, 0);
        }
        let machine = MachineModel::uniform(2, 1);
        let orders = coffman_graham(&g, &machine).unwrap();
        let s = crate::simple::greedy(&g, &g.all_nodes(), &machine, &orders[0]);
        // Optimal: 1 + ceil(4/2) + 1 = 4.
        assert_eq!(s.makespan(), 4);
    }

    #[test]
    fn lexicographic_tie_break() {
        // Two sinks; u's successor has label 1, v's has label 2 => u is
        // labelled next (smaller lexicographic successor list).
        let mut g = DepGraph::new();
        let u = g.add_simple("u", BlockId(0));
        let v = g.add_simple("v", BlockId(0));
        let s1 = g.add_simple("s1", BlockId(0)); // labelled 1 (source pos)
        let s2 = g.add_simple("s2", BlockId(0));
        g.add_dep(u, s1, 0);
        g.add_dep(v, s2, 0);
        let l = coffman_graham_labels(&g, &g.all_nodes()).unwrap();
        assert_eq!(l[s1.index()], 1);
        assert_eq!(l[s2.index()], 2);
        assert_eq!(l[u.index()], 3);
        assert_eq!(l[v.index()], 4);
    }

    #[test]
    fn cyclic_rejected() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 0);
        g.add_dep(b, a, 0);
        assert!(coffman_graham_labels(&g, &g.all_nodes()).is_err());
    }
}
