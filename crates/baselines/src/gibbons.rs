//! The Gibbons–Muchnick heuristic (SIGPLAN'86).
//!
//! An O(n²) list scheduler that, among the ready instructions at each
//! step, prefers (in order):
//!
//! 1. an instruction whose issue does **not set up an interlock**: after
//!    scheduling it, some instruction is (or becomes) ready at the next
//!    cycle, so the pipeline will not be forced to stall — the
//!    adaptation of Gibbons–Muchnick's "does not interlock with the
//!    previously scheduled instruction" to a latency-labelled graph
//!    (in their latency-free model interlocks are runtime stalls; here
//!    the equivalent question is whether the choice leaves the next
//!    cycle issueable),
//! 2. the instruction with the **most immediate successors** (it is
//!    likely to unblock the most work),
//! 3. the instruction on the **longest path** to a sink,
//! 4. source order (determinism).

use crate::simple::per_block;
use asched_graph::{heights, CycleError, DepGraph, MachineModel, NodeId, NodeSet, Schedule};

/// Schedule each block with the Gibbons–Muchnick heuristic; returns the
/// emitted per-block orders.
pub fn gibbons_muchnick(
    g: &DepGraph,
    machine: &MachineModel,
) -> Result<Vec<Vec<NodeId>>, CycleError> {
    per_block(g, machine, schedule_block)
}

fn schedule_block(
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
) -> Result<Vec<NodeId>, CycleError> {
    let h = heights(g, mask)?;
    let mut sched = Schedule::new(g.len());
    let mut done = vec![false; g.len()];
    let mut preds_left = vec![0usize; g.len()];
    let mut est = vec![0u64; g.len()];
    for id in mask.iter() {
        preds_left[id.index()] = g.in_edges_li(id).filter(|e| mask.contains(e.src)).count();
    }
    let mut unit_free = vec![0u64; machine.num_units()];
    let mut remaining = mask.len();
    let mut t = 0u64;

    while remaining > 0 {
        // Collect ready candidates at time t.
        let mut any_issue = false;
        loop {
            // Criterion 1: does scheduling x leave the next cycle
            // issueable? Hypothetically issue x at t (occupying a unit
            // for exec(x) cycles) and ask whether some instruction can
            // actually *issue* at t+1 — it must be data-ready (already,
            // or unblocked by x) AND have a free compatible unit. Unit
            // occupancy is what makes this discriminate: a multi-cycle
            // x on the only unit interlocks even when other work is
            // data-ready.
            let no_interlock = |x: NodeId| -> bool {
                let mut uf = unit_free.clone();
                let u = machine
                    .units_for(g.node(x).class)
                    .find(|&u| uf[u] <= t)
                    .expect("candidate had a free unit");
                let completion = t + g.exec_time(x) as u64;
                uf[u] = completion;
                mask.iter().any(|y| {
                    if y == x || done[y.index()] {
                        return false;
                    }
                    let ready = if preds_left[y.index()] == 0 {
                        est[y.index()] <= t + 1
                    } else {
                        // y's only unscheduled predecessors are copies
                        // of x: its post-issue ready time is est folded
                        // with x's edges.
                        let from_x = g
                            .in_edges_li(y)
                            .filter(|e| mask.contains(e.src) && !done[e.src.index()])
                            .try_fold(0usize, |n, e| (e.src == x).then_some(n + 1));
                        match from_x {
                            Some(n) if n == preds_left[y.index()] => {
                                let arrive = g
                                    .in_edges_li(y)
                                    .filter(|e| e.src == x)
                                    .map(|e| completion + e.latency as u64)
                                    .max()
                                    .unwrap_or(0);
                                est[y.index()].max(arrive) <= t + 1
                            }
                            _ => false,
                        }
                    };
                    ready && machine.units_for(g.node(y).class).any(|u2| uf[u2] <= t + 1)
                })
            };
            let mut best: Option<NodeId> = None;
            let mut best_key = (false, 0usize, 0u64);
            for x in mask.iter() {
                if done[x.index()] || preds_left[x.index()] > 0 || est[x.index()] > t {
                    continue;
                }
                if machine.units_for(g.node(x).class).all(|u| unit_free[u] > t) {
                    continue;
                }
                let no_interlock = no_interlock(x);
                let fanout = g.out_edges_li(x).filter(|e| mask.contains(e.dst)).count();
                let key = (no_interlock, fanout, h[x.index()]);
                let better = match &best {
                    None => true,
                    Some(b) => {
                        key > best_key || (key == best_key && g.stable_key(x) < g.stable_key(*b))
                    }
                };
                if better {
                    best = Some(x);
                    best_key = key;
                }
            }
            let Some(x) = best else { break };
            let u = machine
                .units_for(g.node(x).class)
                .find(|&u| unit_free[u] <= t)
                .expect("candidate had a free unit");
            let exec = g.exec_time(x);
            sched.assign(x, t, u, exec);
            unit_free[u] = t + exec as u64;
            done[x.index()] = true;
            remaining -= 1;
            any_issue = true;
            let completion = t + exec as u64;
            for e in g.out_edges_li(x) {
                if mask.contains(e.dst) && !done[e.dst.index()] {
                    preds_left[e.dst.index()] -= 1;
                    est[e.dst.index()] = est[e.dst.index()].max(completion + e.latency as u64);
                }
            }
        }
        if remaining == 0 {
            break;
        }
        // Advance time to the next event.
        let mut next = u64::MAX;
        for &f in &unit_free {
            if f > t {
                next = next.min(f);
            }
        }
        for id in mask.iter() {
            if !done[id.index()] && preds_left[id.index()] == 0 && est[id.index()] > t {
                next = next.min(est[id.index()]);
            }
        }
        if next == u64::MAX {
            debug_assert!(any_issue);
            next = t + 1;
        }
        t = next;
    }
    Ok(sched.order())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::validate::validate_schedule;
    use asched_graph::BlockId;

    fn m1() -> MachineModel {
        MachineModel::single_unit(2)
    }

    #[test]
    fn avoids_interlock_when_possible() {
        // a -(1)-> b; c independent. After a, choosing c avoids the
        // interlock; then b runs without a stall.
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let c = g.add_simple("c", BlockId(0));
        g.add_dep(a, b, 1);
        let orders = gibbons_muchnick(&g, &m1()).unwrap();
        assert_eq!(orders[0], vec![a, c, b]);
    }

    #[test]
    fn produces_valid_schedules() {
        let mut g = DepGraph::new();
        let n: Vec<_> = (0..8)
            .map(|i| g.add_simple(format!("n{i}"), BlockId(0)))
            .collect();
        g.add_dep(n[0], n[3], 2);
        g.add_dep(n[1], n[3], 0);
        g.add_dep(n[3], n[6], 1);
        g.add_dep(n[2], n[7], 3);
        let orders = gibbons_muchnick(&g, &m1()).unwrap();
        let mask = g.all_nodes();
        let s = crate::simple::greedy(&g, &mask, &m1(), &orders[0]);
        validate_schedule(&g, &mask, &m1(), &s, None).unwrap();
        assert_eq!(orders[0].len(), 8);
    }

    /// Regression (found in code review): the interlock criterion must
    /// account for unit occupancy, not just data readiness — a
    /// multi-cycle instruction on the only unit sets up an interlock
    /// even when other work is data-ready.
    #[test]
    fn multicycle_on_single_unit_interlocks() {
        let mut g = DepGraph::new();
        // mul: exec 2, higher fanout; add1/add2: exec 1.
        let mul = g.add_simple("mul", BlockId(0));
        g.node_mut(mul).exec_time = 2;
        let add1 = g.add_simple("add1", BlockId(0));
        let add2 = g.add_simple("add2", BlockId(0));
        for _ in 0..2 {
            let s = g.add_simple("sink", BlockId(0));
            g.add_dep(mul, s, 0);
        }
        let orders = gibbons_muchnick(&g, &m1()).unwrap();
        // Despite mul's larger fanout, a single-cycle add goes first:
        // issuing mul at t blocks the unit at t+1 (interlock), while an
        // add leaves mul issueable next cycle.
        assert_ne!(orders[0][0], mul);
        let _ = (add1, add2);
    }

    #[test]
    fn fanout_breaks_ties() {
        // Two ready roots: hub feeds three nodes, lone feeds one. The
        // heuristic picks hub first.
        let mut g = DepGraph::new();
        let lone = g.add_simple("lone", BlockId(0));
        let hub = g.add_simple("hub", BlockId(0));
        let l1 = g.add_simple("l1", BlockId(0));
        for i in 0..3 {
            let s = g.add_simple(format!("s{i}"), BlockId(0));
            g.add_dep(hub, s, 0);
        }
        g.add_dep(lone, l1, 0);
        let orders = gibbons_muchnick(&g, &m1()).unwrap();
        assert_eq!(orders[0][0], hub);
    }
}
