//! Source-order, critical-path and whole-trace-oracle schedulers.

use asched_graph::{
    height_priority, CycleError, DepGraph, MachineModel, NodeId, NodeSet, SchedCtx, SchedOpts,
    Schedule,
};
use asched_rank::list_schedule;

/// Greedy list schedule with a throwaway context — the baselines are
/// one-shot comparators, so they pay the (cheap) fresh-context cost
/// instead of threading `SchedCtx` through their public signatures.
pub(crate) fn greedy(
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    prio: &[NodeId],
) -> Schedule {
    list_schedule(
        &mut SchedCtx::new(),
        g,
        mask,
        machine,
        prio,
        &SchedOpts::default(),
    )
}

/// Emit each block exactly as written (the "no scheduling" baseline).
pub fn source_order(g: &DepGraph, _machine: &MachineModel) -> Result<Vec<Vec<NodeId>>, CycleError> {
    Ok(g.blocks()
        .iter()
        .map(|&b| {
            let mut v: Vec<NodeId> = g.block_nodes(b).iter().collect();
            v.sort_by_key(|&id| g.node(id).source_pos);
            v
        })
        .collect())
}

/// Classic critical-path list scheduling, per block: priority by
/// decreasing height (longest latency-weighted path to a sink).
pub fn critical_path(g: &DepGraph, machine: &MachineModel) -> Result<Vec<Vec<NodeId>>, CycleError> {
    per_block(g, machine, |g, mask, machine| {
        let prio = height_priority(g, mask)?;
        Ok(greedy(g, mask, machine, &prio).order())
    })
}

/// The *trace scheduling* oracle: schedule the whole trace as one giant
/// block with critical-path priority, ignoring basic-block boundaries.
///
/// This performs global code motion, which the paper's safe anticipatory
/// scheduler refuses to do; it upper-bounds what any within-block
/// scheduler plus a lookahead window could achieve, and is reported as
/// the "global" line in the experiments. The returned value is the single
/// global sequence — simulate it directly with
/// `InstStream::from_order`, not per block.
pub fn global_oracle(g: &DepGraph, machine: &MachineModel) -> Result<Vec<NodeId>, CycleError> {
    let mask = g.all_nodes();
    let prio = height_priority(g, &mask)?;
    Ok(greedy(g, &mask, machine, &prio).order())
}

/// Helper: apply a per-block scheduling function across all blocks.
pub(crate) fn per_block<F>(
    g: &DepGraph,
    machine: &MachineModel,
    mut f: F,
) -> Result<Vec<Vec<NodeId>>, CycleError>
where
    F: FnMut(&DepGraph, &NodeSet, &MachineModel) -> Result<Vec<NodeId>, CycleError>,
{
    g.blocks()
        .iter()
        .map(|&b| f(g, &g.block_nodes(b), machine))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::BlockId;

    fn m1() -> MachineModel {
        MachineModel::single_unit(2)
    }

    fn two_block_graph() -> DepGraph {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let c = g.add_simple("c", BlockId(1));
        g.add_dep(a, b, 1);
        g.add_dep(b, c, 1);
        g
    }

    #[test]
    fn source_order_preserves_positions() {
        let g = two_block_graph();
        let orders = source_order(&g, &m1()).unwrap();
        assert_eq!(orders.len(), 2);
        assert_eq!(orders[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(orders[1], vec![NodeId(2)]);
    }

    #[test]
    fn critical_path_prefers_long_chains() {
        let mut g = DepGraph::new();
        let filler = g.add_simple("f", BlockId(0));
        let head = g.add_simple("h", BlockId(0));
        let tail = g.add_simple("t", BlockId(0));
        g.add_dep(head, tail, 3);
        let orders = critical_path(&g, &m1()).unwrap();
        // head (height 5) must precede the filler (height 1).
        let pos = |n: NodeId| orders[0].iter().position(|&x| x == n).unwrap();
        assert!(pos(head) < pos(filler));
        assert!(pos(filler) < pos(tail)); // filler fills the gap
    }

    #[test]
    fn oracle_crosses_blocks() {
        // Block 0: a -(3)-> b. Block 1: c (independent). The oracle can
        // hoist c between a and b; per-block schedulers cannot.
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let c = g.add_simple("c", BlockId(1));
        g.add_dep(a, b, 3);
        let seq = global_oracle(&g, &m1()).unwrap();
        assert_eq!(seq, vec![a, c, b]);
    }
}
