//! A uniform registry of the baseline schedulers, for the experiment
//! harness.

use crate::{
    bernstein_gertner, coffman_graham, critical_path, gibbons_muchnick, source_order, warren,
};
use asched_graph::{CycleError, DepGraph, MachineModel, NodeId};

/// The signature shared by every per-block baseline scheduler: emits one
/// instruction order per basic block.
pub type BlockScheduler = fn(&DepGraph, &MachineModel) -> Result<Vec<Vec<NodeId>>, CycleError>;

/// A named per-block baseline scheduler.
#[derive(Clone, Copy)]
pub struct Baseline {
    /// Short name used in experiment tables.
    pub name: &'static str,
    /// The scheduling function: emits one order per block.
    pub run: BlockScheduler,
}

/// Every per-block baseline, in a fixed reporting order.
pub fn all_baselines() -> Vec<Baseline> {
    vec![
        Baseline {
            name: "source",
            run: source_order,
        },
        Baseline {
            name: "critpath",
            run: critical_path,
        },
        Baseline {
            name: "gibbons",
            run: gibbons_muchnick,
        },
        Baseline {
            name: "coffman",
            run: coffman_graham,
        },
        Baseline {
            name: "bernstein",
            run: bernstein_gertner,
        },
        Baseline {
            name: "warren",
            run: warren,
        },
    ]
}

/// Run baseline `b` over a graph and return the emitted per-block
/// orders (convenience wrapper with a uniform signature).
pub fn schedule_program_blocks(
    b: &Baseline,
    g: &DepGraph,
    machine: &MachineModel,
) -> Result<Vec<Vec<NodeId>>, CycleError> {
    (b.run)(g, machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::BlockId;

    #[test]
    fn all_baselines_run_and_cover_all_nodes() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let c = g.add_simple("c", BlockId(1));
        g.add_dep(a, b, 1);
        g.add_dep(b, c, 2);
        let m = MachineModel::single_unit(2);
        for base in all_baselines() {
            let orders = schedule_program_blocks(&base, &g, &m).unwrap();
            let total: usize = orders.iter().map(|o| o.len()).sum();
            assert_eq!(total, g.len(), "{} must cover all nodes", base.name);
            // Each order only contains its own block's nodes.
            for (bi, order) in orders.iter().enumerate() {
                for &id in order {
                    assert_eq!(g.node(id).block.index(), bi, "{}", base.name);
                }
            }
        }
        assert_eq!(all_baselines().len(), 6);
    }

    #[test]
    fn emitted_orders_respect_dependences() {
        let mut g = DepGraph::new();
        let n: Vec<_> = (0..6)
            .map(|i| g.add_simple(format!("n{i}"), BlockId(0)))
            .collect();
        g.add_dep(n[0], n[2], 1);
        g.add_dep(n[1], n[2], 0);
        g.add_dep(n[2], n[5], 2);
        g.add_dep(n[3], n[4], 1);
        let m = MachineModel::single_unit(2);
        for base in all_baselines() {
            let orders = schedule_program_blocks(&base, &g, &m).unwrap();
            let pos: std::collections::HashMap<_, _> =
                orders[0].iter().enumerate().map(|(i, &x)| (x, i)).collect();
            for e in g.edges() {
                assert!(
                    pos[&e.src] < pos[&e.dst],
                    "{}: {} must precede {}",
                    base.name,
                    e.src,
                    e.dst
                );
            }
        }
    }
}
