//! Baseline instruction schedulers.
//!
//! The comparators from the paper's Related Work section (Section 6) and
//! its future-work evaluation plan ("compare their effectiveness with
//! known local and global scheduling algorithms"):
//!
//! * [`source_order`] — emit instructions as written (no scheduling).
//! * [`critical_path`] — classic list scheduling by decreasing
//!   critical-path height.
//! * [`gibbons_muchnick`] — the O(n²) heuristic of Gibbons & Muchnick
//!   (SIGPLAN'86): prefer a ready instruction that does not interlock
//!   with the previously scheduled one, then one with more successors,
//!   then the longer path.
//! * [`coffman_graham`] — Coffman–Graham lexicographic labelling
//!   (optimal for two-processor unit-time scheduling; a strong list
//!   priority in general).
//! * [`bernstein_gertner`] — labelling in the spirit of Bernstein &
//!   Gertner (TOPLAS'89), which generalizes Coffman–Graham to latencies
//!   of 0/1 on a single pipeline.
//! * [`warren`] — a Warren-style (IBM RISC System/6000 product compiler)
//!   prioritized greedy scheduler: critical path first, ties by source
//!   order, with an interlock-avoidance nudge.
//! * [`global_oracle`] — *trace scheduling* upper bound: schedules the
//!   whole trace as one block, ignoring block boundaries (code motion
//!   the safe anticipatory scheduler is not allowed to perform).
//!
//! All of these schedule **each basic block independently** (except the
//! oracle) and are evaluated by running their emitted orders through the
//! lookahead-window simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bernstein;
mod coffman;
mod gibbons;
mod registry;
mod simple;
mod warren;

pub use bernstein::bernstein_gertner;
pub use coffman::{coffman_graham, coffman_graham_labels};
pub use gibbons::gibbons_muchnick;
pub use registry::{all_baselines, schedule_program_blocks, Baseline, BlockScheduler};
pub use simple::{critical_path, global_oracle, source_order};
pub use warren::warren;
