//! Property tests for the baseline schedulers.

use asched_baselines::{all_baselines, global_oracle};
use asched_graph::validate::validate_schedule;
use asched_graph::{
    BlockId, DepGraph, MachineModel, NodeId, NodeSet, SchedCtx, SchedOpts, Schedule,
};
use asched_rank::{brute, list_schedule};
use proptest::prelude::*;

/// Greedy list schedule with a throwaway context (baselines are one-shot
/// comparators; the ctx cache buys nothing across distinct instances).
fn greedy(g: &DepGraph, mask: &NodeSet, machine: &MachineModel, prio: &[NodeId]) -> Schedule {
    list_schedule(
        &mut SchedCtx::new(),
        g,
        mask,
        machine,
        prio,
        &SchedOpts::default(),
    )
}

fn arb_block(max_n: usize, max_lat: u32) -> impl Strategy<Value = DepGraph> {
    (2usize..max_n, any::<u64>(), 0.1f64..0.6).prop_map(move |(n, seed, density)| {
        let mut g = DepGraph::new();
        for i in 0..n {
            g.add_simple(format!("n{i}"), BlockId(0));
        }
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            for j in (i + 1)..n {
                if (next() % 1000) as f64 / 1000.0 < density {
                    g.add_dep(
                        NodeId(i as u32),
                        NodeId(j as u32),
                        (next() % (max_lat as u64 + 1)) as u32,
                    );
                }
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every baseline produces a valid greedy schedule on every machine
    /// shape, and never beats the exact optimum.
    #[test]
    fn baselines_are_valid_and_bounded(g in arb_block(10, 3), units in 1usize..3) {
        let machine = MachineModel::uniform(units, 4);
        let opt = brute::optimal_makespan(&g, &g.all_nodes(), &machine);
        for b in all_baselines() {
            let orders = (b.run)(&g, &machine).unwrap();
            let s = greedy(&g, &g.all_nodes(), &machine, &orders[0]);
            validate_schedule(&g, &g.all_nodes(), &machine, &s, None)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            prop_assert!(
                s.makespan() >= opt,
                "{} beat the optimum: {} < {}", b.name, s.makespan(), opt
            );
        }
    }

    /// Coffman–Graham is optimal on two unit-time processors without
    /// latencies (its classical guarantee).
    #[test]
    fn coffman_graham_two_processor_optimality(g in arb_block(9, 0)) {
        let machine = MachineModel::uniform(2, 1);
        let orders = asched_baselines::coffman_graham(&g, &machine).unwrap();
        let s = greedy(&g, &g.all_nodes(), &machine, &orders[0]);
        let opt = brute::optimal_makespan(&g, &g.all_nodes(), &machine);
        prop_assert_eq!(s.makespan(), opt);
    }

    /// Bernstein–Gertner-style labelling is near-optimal on a single
    /// pipeline with 0/1 latencies (the setting the original exact
    /// algorithm was designed for; our baseline reimplements its
    /// labelling *idea*, not the full procedure, and stays within one
    /// cycle of the optimum).
    #[test]
    fn bernstein_gertner_restricted_near_optimality(g in arb_block(9, 1)) {
        let machine = MachineModel::single_unit(1);
        let orders = asched_baselines::bernstein_gertner(&g, &machine).unwrap();
        let s = greedy(&g, &g.all_nodes(), &machine, &orders[0]);
        let opt = brute::optimal_makespan(&g, &g.all_nodes(), &machine);
        prop_assert!(s.makespan() >= opt);
        prop_assert!(
            s.makespan() <= opt + 1,
            "BG {} vs optimum {}", s.makespan(), opt
        );
    }

    /// The global oracle is at least as good as every per-block baseline
    /// when the graph is a single block (they solve the same problem).
    #[test]
    fn oracle_matches_critpath_on_single_blocks(g in arb_block(12, 2)) {
        let machine = MachineModel::single_unit(4);
        let oracle = global_oracle(&g, &machine).unwrap();
        let s_oracle = greedy(&g, &g.all_nodes(), &machine, &oracle);
        let cp = asched_baselines::critical_path(&g, &machine).unwrap();
        let s_cp = greedy(&g, &g.all_nodes(), &machine, &cp[0]);
        prop_assert_eq!(s_oracle.makespan(), s_cp.makespan());
    }
}
