//! Property tests for the graph substrate.

use asched_graph::{
    ancestors, descendants, heights, topo_order, BlockId, DepGraph, NodeId, NodeSet,
};
use proptest::prelude::*;

/// Random DAG: `n` nodes, forward edges only (guaranteed acyclic).
fn arb_dag() -> impl Strategy<Value = DepGraph> {
    (2usize..20, any::<u64>(), 0.05f64..0.7).prop_map(|(n, seed, density)| {
        let mut g = DepGraph::new();
        for i in 0..n {
            g.add_simple(format!("n{i}"), BlockId((i % 3) as u32));
        }
        // Deterministic pseudo-random edges from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            for j in (i + 1)..n {
                if (next() % 1000) as f64 / 1000.0 < density {
                    let lat = (next() % 4) as u32;
                    g.add_dep(NodeId(i as u32), NodeId(j as u32), lat);
                }
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Topological order places every edge source before its target.
    #[test]
    fn topo_respects_edges(g in arb_dag()) {
        let order = topo_order(&g, &g.all_nodes()).unwrap();
        prop_assert_eq!(order.len(), g.len());
        let pos: Vec<usize> = {
            let mut p = vec![0; g.len()];
            for (i, &id) in order.iter().enumerate() {
                p[id.index()] = i;
            }
            p
        };
        for e in g.edges() {
            prop_assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }

    /// descendants and ancestors are transposes of each other, and both
    /// are transitive.
    #[test]
    fn reachability_duality_and_transitivity(g in arb_dag()) {
        let mask = g.all_nodes();
        let d = descendants(&g, &mask).unwrap();
        let a = ancestors(&g, &mask).unwrap();
        for u in g.node_ids() {
            for v in g.node_ids() {
                prop_assert_eq!(d[u.index()].contains(v), a[v.index()].contains(u));
            }
        }
        for u in g.node_ids() {
            let du: Vec<NodeId> = d[u.index()].iter().collect();
            for &v in &du {
                for w in d[v.index()].iter() {
                    prop_assert!(
                        d[u.index()].contains(w),
                        "transitivity: {} -> {} -> {}", u, v, w
                    );
                }
            }
        }
    }

    /// Heights satisfy the defining recurrence as an inequality against
    /// every outgoing edge.
    #[test]
    fn heights_dominate_every_edge(g in arb_dag()) {
        let h = heights(&g, &g.all_nodes()).unwrap();
        for e in g.edges() {
            prop_assert!(
                h[e.src.index()]
                    >= g.exec_time(e.src) as u64 + e.latency as u64 + h[e.dst.index()]
            );
        }
        for id in g.node_ids() {
            prop_assert!(h[id.index()] >= g.exec_time(id) as u64);
        }
    }

    /// NodeSet algebra: commutativity, absorption, iteration order.
    #[test]
    fn nodeset_algebra(xs in proptest::collection::vec(0u32..200, 0..40),
                       ys in proptest::collection::vec(0u32..200, 0..40)) {
        let a = NodeSet::from_iter_with_universe(200, xs.iter().map(|&i| NodeId(i)));
        let b = NodeSet::from_iter_with_universe(200, ys.iter().map(|&i| NodeId(i)));
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert!(a.is_subset(&a.union(&b)));
        let mut i = a.clone();
        i.intersect_with(&b);
        prop_assert!(i.is_subset(&a) && i.is_subset(&b));
        let mut diff = a.clone();
        diff.subtract(&b);
        prop_assert!(diff.is_disjoint(&b));
        prop_assert_eq!(diff.len() + i.len(), a.len());
        // Iteration is sorted and duplicate-free.
        let items: Vec<NodeId> = a.iter().collect();
        let mut sorted = items.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(items, sorted);
    }

    /// Restricting a mask restricts reachability monotonically.
    #[test]
    fn mask_monotonicity(g in arb_dag()) {
        let full = g.all_nodes();
        // Drop the last node from the mask.
        let mut sub = full.clone();
        let last = NodeId(g.len() as u32 - 1);
        sub.remove(last);
        let d_full = descendants(&g, &full).unwrap();
        let d_sub = descendants(&g, &sub).unwrap();
        for u in sub.iter() {
            for v in d_sub[u.index()].iter() {
                prop_assert!(d_full[u.index()].contains(v));
            }
        }
    }
}
