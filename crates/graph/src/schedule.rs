//! Schedule container and idle-slot queries.

use crate::graph::DepGraph;
use crate::machine::MachineModel;
use crate::node::NodeId;
use crate::set::NodeSet;
use std::fmt;

/// A schedule: a start time and functional-unit assignment per node.
///
/// A schedule may cover only a subset of a graph's nodes (the `mask` the
/// scheduler ran on); unscheduled nodes report `None`. Times are integer
/// cycles starting at 0 (paper convention: the *completion time* of a node
/// starting at `t` with execution time `e` is `t + e`; makespan is the
/// completion time of the last instruction).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schedule {
    start: Vec<Option<u64>>,
    end: Vec<Option<u64>>,
    unit: Vec<Option<u32>>,
    makespan: u64,
}

impl Schedule {
    /// Empty schedule for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Schedule {
            start: vec![None; n],
            end: vec![None; n],
            unit: vec![None; n],
            makespan: 0,
        }
    }

    /// Record that `id` starts at `start` on unit `unit` and runs for
    /// `exec_time` cycles.
    pub fn assign(&mut self, id: NodeId, start: u64, unit: usize, exec_time: u32) {
        assert!(exec_time >= 1, "execution time must be positive");
        assert!(
            self.start[id.index()].is_none(),
            "node {id} scheduled twice"
        );
        let end = start + exec_time as u64;
        self.start[id.index()] = Some(start);
        self.end[id.index()] = Some(end);
        self.unit[id.index()] = Some(unit as u32);
        self.makespan = self.makespan.max(end);
    }

    /// Start time of `id`, if scheduled.
    #[inline]
    pub fn start(&self, id: NodeId) -> Option<u64> {
        self.start[id.index()]
    }

    /// Completion time of `id`, if scheduled.
    #[inline]
    pub fn completion(&self, id: NodeId) -> Option<u64> {
        self.end[id.index()]
    }

    /// Functional unit of `id`, if scheduled.
    #[inline]
    pub fn unit(&self, id: NodeId) -> Option<usize> {
        self.unit[id.index()].map(|u| u as usize)
    }

    /// Completion time of the last instruction (0 for an empty schedule).
    #[inline]
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// Number of node slots (the graph size this schedule was built for).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.start.len()
    }

    /// Ids of all scheduled nodes.
    pub fn scheduled(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.start
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Number of scheduled nodes.
    pub fn num_scheduled(&self) -> usize {
        self.start.iter().filter(|s| s.is_some()).count()
    }

    /// Scheduled nodes ordered by (start time, unit).
    ///
    /// On a single-unit machine this is the *permutation* the paper
    /// identifies a schedule with (Definition 2.1).
    pub fn order(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.scheduled().collect();
        v.sort_by_key(|&id| {
            (
                self.start[id.index()].unwrap(),
                self.unit[id.index()].unwrap(),
            )
        });
        v
    }

    /// Per-cycle busy counts for each unit: `busy[u][t]` is true iff unit
    /// `u` is executing some instruction during cycle `t`.
    pub fn busy_map(&self, machine: &MachineModel) -> Vec<Vec<bool>> {
        let t_max = self.makespan as usize;
        let mut busy = vec![vec![false; t_max]; machine.num_units()];
        for id in self.scheduled() {
            let u = self.unit(id).unwrap();
            let (s, e) = (self.start(id).unwrap(), self.completion(id).unwrap());
            for t in s..e {
                debug_assert!(!busy[u][t as usize], "unit {u} double-booked at {t}");
                busy[u][t as usize] = true;
            }
        }
        busy
    }

    /// Idle slots on a **single-unit** machine: the cycles `t <
    /// makespan` during which the unit is not executing anything, in
    /// increasing order.
    ///
    /// This is the paper's notion of an idle slot (Section 3). Panics if
    /// called for a multi-unit machine — use [`Schedule::idle_slots_unit`]
    /// there.
    pub fn idle_slots(&self, machine: &MachineModel) -> Vec<u64> {
        assert!(
            machine.is_single_unit(),
            "idle_slots is defined for single-unit machines; use idle_slots_unit"
        );
        self.idle_slots_unit(machine, 0)
    }

    /// Idle cycles of one particular unit, in increasing order.
    ///
    /// Builds only this unit's occupancy row — the idle-slot delaying
    /// loops call this once per iteration, so materializing the full
    /// [`Schedule::busy_map`] here would waste `num_units x makespan`
    /// work per call.
    pub fn idle_slots_unit(&self, machine: &MachineModel, unit: usize) -> Vec<u64> {
        assert!(unit < machine.num_units(), "unit {unit} out of range");
        let mut busy = vec![false; self.makespan as usize];
        for id in self.scheduled() {
            if self.unit(id) == Some(unit) {
                for t in self.start(id).unwrap()..self.completion(id).unwrap() {
                    busy[t as usize] = true;
                }
            }
        }
        (0..self.makespan).filter(|&t| !busy[t as usize]).collect()
    }

    /// The node occupying cycle `t` on `unit` (i.e. `start <= t < end`),
    /// if any.
    pub fn occupant(&self, unit: usize, t: u64) -> Option<NodeId> {
        self.scheduled().find(|&id| {
            self.unit(id) == Some(unit)
                && self.start(id).unwrap() <= t
                && t < self.completion(id).unwrap()
        })
    }

    /// The node that *completes exactly at* time `t` on `unit`, if any.
    ///
    /// For unit execution times this is the paper's *tail node*: the node
    /// scheduled at time `t - 1`, just prior to an idle slot at `t`.
    pub fn tail_node(&self, unit: usize, t: u64) -> Option<NodeId> {
        self.scheduled()
            .find(|&id| self.unit(id) == Some(unit) && self.completion(id) == Some(t))
    }

    /// Shift every start time down by `delta` (used by `chop` when
    /// re-basing a suffix schedule to time 0). Panics if any scheduled
    /// node would start before 0.
    pub fn rebase(&mut self, delta: u64) {
        let mut makespan = 0;
        for i in 0..self.start.len() {
            if let Some(s) = self.start[i] {
                assert!(s >= delta, "rebase would move a node before time 0");
                self.start[i] = Some(s - delta);
                let e = self.end[i].unwrap() - delta;
                self.end[i] = Some(e);
                makespan = makespan.max(e);
            }
        }
        self.makespan = makespan;
    }

    /// Restrict the schedule to `mask`, dropping all other assignments and
    /// recomputing the makespan.
    pub fn restrict(&self, mask: &NodeSet) -> Schedule {
        let mut s = Schedule::new(self.start.len());
        for id in self.scheduled() {
            if mask.contains(id) {
                let st = self.start(id).unwrap();
                let e = (self.completion(id).unwrap() - st) as u32;
                s.assign(id, st, self.unit(id).unwrap(), e);
            }
        }
        s
    }

    /// Render the schedule as a compact single-line Gantt string using the
    /// graph's node labels, e.g. `|x|e|r|w|b| |a|` (single unit only).
    pub fn gantt(&self, g: &DepGraph, machine: &MachineModel) -> String {
        let mut rows = Vec::new();
        for u in 0..machine.num_units() {
            let mut row = String::from("|");
            for t in 0..self.makespan {
                match self.occupant(u, t) {
                    Some(id) => {
                        let lab = &g.node(id).label;
                        if self.start(id) == Some(t) {
                            row.push_str(lab);
                        } else {
                            // continuation of a multi-cycle instruction
                            row.push('.');
                        }
                    }
                    None => row.push(' '),
                }
                row.push('|');
            }
            rows.push(row);
        }
        rows.join("\n")
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule[makespan={}](", self.makespan)?;
        let mut first = true;
        for id in self.order() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}@{}", id, self.start(id).unwrap())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::BlockId;

    fn machine() -> MachineModel {
        MachineModel::single_unit(2)
    }

    #[test]
    fn assign_and_makespan() {
        let mut s = Schedule::new(3);
        s.assign(NodeId(0), 0, 0, 1);
        s.assign(NodeId(2), 3, 0, 2);
        assert_eq!(s.makespan(), 5);
        assert_eq!(s.start(NodeId(0)), Some(0));
        assert_eq!(s.completion(NodeId(2)), Some(5));
        assert_eq!(s.start(NodeId(1)), None);
        assert_eq!(s.num_scheduled(), 2);
    }

    #[test]
    #[should_panic(expected = "scheduled twice")]
    fn double_assignment_panics() {
        let mut s = Schedule::new(1);
        s.assign(NodeId(0), 0, 0, 1);
        s.assign(NodeId(0), 1, 0, 1);
    }

    #[test]
    fn idle_slots_single_unit() {
        let mut s = Schedule::new(3);
        s.assign(NodeId(0), 0, 0, 1);
        s.assign(NodeId(1), 2, 0, 1); // idle at 1
        s.assign(NodeId(2), 5, 0, 1); // idle at 3, 4
        assert_eq!(s.idle_slots(&machine()), vec![1, 3, 4]);
    }

    #[test]
    fn idle_slots_with_multicycle_instruction() {
        let mut s = Schedule::new(2);
        s.assign(NodeId(0), 0, 0, 3); // busy 0,1,2
        s.assign(NodeId(1), 4, 0, 1);
        assert_eq!(s.idle_slots(&machine()), vec![3]);
    }

    #[test]
    fn tail_node_and_occupant() {
        let mut s = Schedule::new(2);
        s.assign(NodeId(0), 1, 0, 2); // occupies 1,2; completes at 3
        assert_eq!(s.occupant(0, 1), Some(NodeId(0)));
        assert_eq!(s.occupant(0, 2), Some(NodeId(0)));
        assert_eq!(s.occupant(0, 0), None);
        assert_eq!(s.tail_node(0, 3), Some(NodeId(0)));
        assert_eq!(s.tail_node(0, 2), None);
    }

    #[test]
    fn order_is_by_time_then_unit() {
        let m = MachineModel::uniform(2, 2);
        let mut s = Schedule::new(3);
        s.assign(NodeId(2), 0, 1, 1);
        s.assign(NodeId(1), 0, 0, 1);
        s.assign(NodeId(0), 1, 0, 1);
        assert_eq!(s.order(), vec![NodeId(1), NodeId(2), NodeId(0)]);
        // sanity: busy map has no double-booking
        let busy = s.busy_map(&m);
        assert!(busy[0][0] && busy[1][0] && busy[0][1]);
    }

    #[test]
    fn rebase_shifts_everything() {
        let mut s = Schedule::new(2);
        s.assign(NodeId(0), 3, 0, 1);
        s.assign(NodeId(1), 5, 0, 1);
        s.rebase(3);
        assert_eq!(s.start(NodeId(0)), Some(0));
        assert_eq!(s.start(NodeId(1)), Some(2));
        assert_eq!(s.makespan(), 3);
    }

    #[test]
    fn restrict_drops_other_nodes() {
        let mut s = Schedule::new(3);
        s.assign(NodeId(0), 0, 0, 1);
        s.assign(NodeId(1), 1, 0, 1);
        s.assign(NodeId(2), 2, 0, 1);
        let mut mask = NodeSet::new(3);
        mask.insert(NodeId(1));
        let r = s.restrict(&mask);
        assert_eq!(r.num_scheduled(), 1);
        assert_eq!(r.start(NodeId(1)), Some(1));
        assert_eq!(r.makespan(), 2);
    }

    #[test]
    fn gantt_rendering() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let mut s = Schedule::new(2);
        s.assign(a, 0, 0, 1);
        s.assign(b, 2, 0, 1);
        assert_eq!(s.gantt(&g, &machine()), "|a| |b|");
    }
}
