//! Dependence-graph substrate for anticipatory instruction scheduling.
//!
//! This crate provides the data structures shared by every other crate in
//! the workspace:
//!
//! * [`DepGraph`] — a dependence graph whose nodes are instructions (with an
//!   execution time and a functional-unit class) and whose edges carry a
//!   `<latency, distance>` label exactly as in Sarkar & Simons (SPAA 1996,
//!   Section 5): `distance = 0` is a loop-independent dependence and
//!   `distance > 0` a loop-carried one.
//! * [`NodeSet`] — a dense bitset over graph nodes, used to run every
//!   algorithm on an arbitrary subset of a graph (e.g. `old ∪ new` in the
//!   paper's `merge` procedure) without re-indexing.
//! * [`Schedule`] — start times and unit assignments, plus idle-slot
//!   queries (the paper's central notion).
//! * [`MachineModel`] — functional units plus the lookahead-window size
//!   `W` of the target processor.
//! * [`validate`] — an independent checker that a schedule satisfies all
//!   dependence, latency, unit-capacity and deadline constraints. Every
//!   scheduler in the workspace is tested against it.
//!
//! The graph is deliberately simple and owned (`Vec`-backed, `u32` ids):
//! basic blocks are small, and the algorithms of the paper are quadratic in
//! the worst case anyway, so clarity wins over pointer tricks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod critical;
mod ctx;
mod dot;
mod edge;
mod graph;
mod machine;
mod node;
mod reach;
mod schedule;
mod set;
mod topo;
pub mod validate;

pub use critical::{critical_path_length, height_priority, heights};
pub use ctx::{
    Analysis, AnalysisCache, BackwardMode, ListScratch, SchedCtx, SchedOpts, Scratch, SimScratch,
    DEFAULT_CACHE_CAPACITY,
};
pub use dot::to_dot;
pub use edge::{DepEdge, DepKind};
pub use graph::DepGraph;
pub use machine::{FuClass, MachineModel};
pub use node::{BlockId, NodeData, NodeId};
pub use reach::{ancestors, descendants, descendants_with_order};
pub use schedule::Schedule;
pub use set::NodeSet;
pub use topo::{topo_order, CycleError};
