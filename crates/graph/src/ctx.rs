//! Reusable per-thread scheduling context: cached graph analyses plus
//! scratch buffers.
//!
//! The paper's deadline-manipulation loops (`Delay_Idle_Slots`, Fig. 4;
//! `merge`, Fig. 6) call the Rank Algorithm repeatedly on the *same*
//! `(graph, mask)` with only the deadlines changing. Recomputing the
//! topological order, the descendant bitsets and the successor lists on
//! every call — and allocating fresh working vectors each time — is pure
//! overhead. A [`SchedCtx`] owns both halves of the fix:
//!
//! * [`AnalysisCache`] — a small memo of derived analyses keyed by
//!   `(graph stamp, mask)`. The stamp ([`DepGraph::stamp`]) is refreshed
//!   on every graph mutation, so stale entries can never be returned;
//!   they simply stop matching and age out of the FIFO.
//! * [`Scratch`] — the working vectors of the rank/list/idle/sim hot
//!   loops, resized (never shrunk) per call so that a warmed-up context
//!   runs those loops without touching the allocator.
//!
//! Threading rules: a `SchedCtx` is an ordinary owned value with no
//! interior mutability — one per thread, created where the work happens
//! (the engine keeps one per worker, surviving across tasks). It is a
//! pure caching layer: every algorithm must produce bit-identical output
//! whether it is handed a fresh context or one warmed by arbitrary prior
//! calls.

use crate::graph::DepGraph;
use crate::node::NodeId;
use crate::reach::descendants_with_order;
use crate::set::NodeSet;
use crate::topo::{topo_order, CycleError};
use asched_obs::Recorder;
use std::collections::HashMap;

/// How the Rank Algorithm packs descendants backwards from their
/// deadlines on a multi-unit machine (see `asched-rank`).
///
/// `Whole` treats the descendant set as one backward scheduling problem
/// (the paper's formulation); `Piecewise` packs each descendant
/// independently against its own deadline — cheaper, looser ranks. The
/// default reproduces the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BackwardMode {
    /// Backward-schedule the whole descendant set together (paper).
    #[default]
    Whole,
    /// Bound each descendant independently (faster approximation).
    Piecewise,
}

/// Options shared by every scheduling entry point: release times, the
/// backward-packing mode and the event recorder. Each algorithm reads
/// the fields that apply to it and ignores the rest.
///
/// The [`Default`] value is the paper's configuration: no release
/// constraints, [`BackwardMode::Whole`], events dropped.
#[derive(Clone, Copy)]
pub struct SchedOpts<'a> {
    /// Per-node earliest-issue times (indexed by `NodeId::index()`), or
    /// `None` for "everything available at cycle 0". For the simulator,
    /// the index is the *stream position* instead.
    pub release: Option<&'a [u64]>,
    /// Backward-packing mode for rank computation.
    pub backward: BackwardMode,
    /// Event sink; use [`asched_obs::NULL`] to drop events at zero cost.
    pub rec: &'a dyn Recorder,
    /// Span attribution for emitted pass events (`None` = untraced).
    /// Span-aware callers (the serving tier, the batch engine) set this
    /// so `pass_begin`/`pass_end` lines carry the request/task span
    /// they ran under; with `None` the wire format is unchanged.
    pub span: Option<asched_obs::SpanId>,
}

impl Default for SchedOpts<'_> {
    fn default() -> Self {
        SchedOpts {
            release: None,
            backward: BackwardMode::Whole,
            rec: &asched_obs::NULL,
            span: None,
        }
    }
}

impl<'a> SchedOpts<'a> {
    /// This option set with per-node release times.
    pub fn with_release(self, release: &'a [u64]) -> Self {
        SchedOpts {
            release: Some(release),
            ..self
        }
    }

    /// This option set with a backward-packing mode.
    pub fn with_backward(self, backward: BackwardMode) -> Self {
        SchedOpts { backward, ..self }
    }

    /// This option set with an event recorder.
    pub fn with_recorder(self, rec: &'a dyn Recorder) -> Self {
        SchedOpts { rec, ..self }
    }

    /// This option set attributing pass events to `span`.
    pub fn with_span(self, span: asched_obs::SpanId) -> Self {
        SchedOpts {
            span: Some(span),
            ..self
        }
    }
}

/// Derived analyses of one `(graph, mask)` pair, computed once and
/// shared by every rank run on that pair.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Topological order of the masked subgraph (loop-independent edges).
    pub order: Vec<NodeId>,
    /// Strict-descendant bitsets, indexed by `NodeId::index()`.
    pub desc: Vec<NodeSet>,
    /// Deduplicated max-latency successor lists restricted to the mask,
    /// indexed by `NodeId::index()` (empty outside the mask).
    pub succs: Vec<Vec<(NodeId, u32)>>,
}

struct CacheEntry {
    stamp: u64,
    mask: NodeSet,
    analysis: Analysis,
}

/// Default number of `(graph, mask)` analyses kept per context. Plenty
/// for a lookahead pass (which touches `old`, `new` and `old ∪ new` per
/// block boundary) while bounding memory on candidate-enumeration loops
/// that probe many throwaway graphs.
pub const DEFAULT_CACHE_CAPACITY: usize = 16;

/// FIFO-bounded memo of [`Analysis`] results keyed by
/// `(`[`DepGraph::stamp`]`, mask)`.
///
/// Because a stamp is refreshed on every mutation, invalidation is
/// implicit: a mutated graph can never hit a stale entry. Lookups on the
/// hit path are allocation-free (a linear scan of at most
/// `capacity` entries comparing stamp and bitset words).
pub struct AnalysisCache {
    entries: Vec<CacheEntry>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl AnalysisCache {
    /// Empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// Empty cache holding at most `capacity` analyses (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        AnalysisCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// The analysis of `(g, mask)`: cached if present, computed (and
    /// cached) otherwise. Fails only if the masked subgraph is cyclic;
    /// failures are not cached (they are cheap to rediscover and a
    /// cyclic mask is always an error path).
    pub fn analysis(&mut self, g: &DepGraph, mask: &NodeSet) -> Result<&Analysis, CycleError> {
        if let Some(i) = self
            .entries
            .iter()
            .position(|e| e.stamp == g.stamp() && &e.mask == mask)
        {
            self.hits += 1;
            return Ok(&self.entries[i].analysis);
        }
        self.misses += 1;
        let order = topo_order(g, mask)?;
        let desc = descendants_with_order(g, mask, &order);
        let mut succs = vec![Vec::new(); g.len()];
        for id in mask.iter() {
            succs[id.index()] = g.succs_in(id, mask);
        }
        if self.entries.len() >= self.capacity {
            self.entries.remove(0); // FIFO: oldest first
        }
        self.entries.push(CacheEntry {
            stamp: g.stamp(),
            mask: mask.clone(),
            analysis: Analysis { order, desc, succs },
        });
        Ok(&self.entries.last().expect("just pushed").analysis)
    }

    /// Number of cache hits served so far.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses (fresh computations) so far.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of analyses currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every cached analysis (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl Default for AnalysisCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Scratch vectors of the greedy list scheduler.
#[derive(Debug, Default)]
pub struct ListScratch {
    /// Priority order filtered to the mask.
    pub order: Vec<NodeId>,
    /// Next free cycle per functional unit.
    pub unit_free: Vec<u64>,
    /// Unscheduled-predecessor counts per node.
    pub preds_left: Vec<usize>,
    /// Earliest start per node.
    pub est: Vec<u64>,
    /// Already-issued flags per node.
    pub done: Vec<bool>,
}

/// Scratch state of the lookahead-window simulator.
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Finish cycle of every completed dynamic instance, keyed by
    /// `(node id, iteration)`.
    pub occ: HashMap<(u32, u32), usize>,
    /// Producer list per stream position.
    pub producers: Vec<Vec<(usize, u32)>>,
    /// Issued flags per stream position.
    pub issued: Vec<bool>,
    /// Next free cycle per functional unit.
    pub unit_free: Vec<u64>,
}

/// Reusable working memory for the scheduling hot loops.
///
/// Buffers are cleared and resized at the start of each use; capacity is
/// retained, so after one warm-up call on a given problem size the loops
/// stop allocating. All fields are plain buffers with no semantic state
/// between calls — any entry point may clobber any of them.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Per-node ranks (rank computation output buffer).
    pub rank: Vec<i64>,
    /// Per-node backward start times.
    pub back_start: Vec<i64>,
    /// Per-node urgency counters (`u32::MAX` = unvisited sentinel).
    pub urgency: Vec<u32>,
    /// Sorted-descendant arena for the backward-packing inner loop.
    pub ds: Vec<NodeId>,
    /// Per-unit earliest-completion bound in backward packing.
    pub unit_earliest: Vec<i64>,
    /// Rank-priority order buffer.
    pub prio: Vec<NodeId>,
    /// List-scheduler scratch.
    pub list: ListScratch,
    /// Per-block release-time buffer (trace scheduling).
    pub release: Vec<u64>,
    /// Deadline snapshot buffer for save/restore in idle-slot moves.
    pub deadline_save: Vec<i64>,
    /// Simulator scratch.
    pub sim: SimScratch,
    /// Pool of recyclable node sets (see [`Scratch::acquire_set`]).
    sets: Vec<NodeSet>,
}

impl Scratch {
    /// An empty node set over `universe` ids, recycled from the pool
    /// when one is available. Return it with [`Scratch::release_set`]
    /// when done to keep the pool warm.
    pub fn acquire_set(&mut self, universe: usize) -> NodeSet {
        match self.sets.pop() {
            Some(mut s) => {
                s.reset(universe);
                s
            }
            None => NodeSet::new(universe),
        }
    }

    /// Recycle a node set obtained from [`Scratch::acquire_set`] (or
    /// anywhere else — contents are discarded on reuse).
    pub fn release_set(&mut self, set: NodeSet) {
        self.sets.push(set);
    }
}

/// A per-thread scheduling context: the analysis cache plus the scratch
/// buffers, threaded as `&mut SchedCtx` through every algorithm layer
/// (rank → core → sim → engine).
///
/// The two halves are separate public fields so callers can split the
/// borrow: hold `&Analysis` out of [`SchedCtx::cache`] while mutating
/// [`SchedCtx::scratch`].
///
/// Contexts are cheap to create (empty vectors) — the value is in
/// *reuse*: keep one alive across calls (per worker thread, per trace)
/// and the hot loops hit the cache and stop allocating.
#[derive(Default)]
pub struct SchedCtx {
    /// Memoized `(graph, mask)` analyses.
    pub cache: AnalysisCache,
    /// Reusable working vectors.
    pub scratch: Scratch,
}

impl SchedCtx {
    /// A fresh, empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh context whose analysis cache holds at most `capacity`
    /// entries.
    pub fn with_cache_capacity(capacity: usize) -> Self {
        SchedCtx {
            cache: AnalysisCache::with_capacity(capacity),
            scratch: Scratch::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::BlockId;

    fn diamond() -> DepGraph {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let c = g.add_simple("c", BlockId(0));
        let d = g.add_simple("d", BlockId(0));
        g.add_dep(a, b, 1);
        g.add_dep(a, c, 2);
        g.add_dep(b, d, 1);
        g.add_dep(c, d, 1);
        g
    }

    #[test]
    fn analysis_matches_direct_computation() {
        let g = diamond();
        let mask = g.all_nodes();
        let mut cache = AnalysisCache::new();
        let a = cache.analysis(&g, &mask).unwrap();
        assert_eq!(a.order, topo_order(&g, &mask).unwrap());
        assert_eq!(a.desc, crate::reach::descendants(&g, &mask).unwrap());
        for id in mask.iter() {
            assert_eq!(a.succs[id.index()], g.succs_in(id, &mask));
        }
    }

    #[test]
    fn second_lookup_hits() {
        let g = diamond();
        let mask = g.all_nodes();
        let mut cache = AnalysisCache::new();
        cache.analysis(&g, &mask).unwrap();
        cache.analysis(&g, &mask).unwrap();
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_masks_are_distinct_entries() {
        let g = diamond();
        let all = g.all_nodes();
        let mut sub = NodeSet::new(g.len());
        sub.insert(NodeId(0));
        sub.insert(NodeId(1));
        let mut cache = AnalysisCache::new();
        cache.analysis(&g, &all).unwrap();
        cache.analysis(&g, &sub).unwrap();
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
        // Sub-mask analysis really is restricted.
        let a = cache.analysis(&g, &sub).unwrap();
        assert_eq!(a.order.len(), 2);
    }

    #[test]
    fn mutation_invalidates() {
        let mut g = diamond();
        let mask = g.all_nodes();
        let mut cache = AnalysisCache::new();
        let before = cache.analysis(&g, &mask).unwrap().desc[0].len();
        assert_eq!(before, 3);
        // New edge extends nobody's descendants (parallel), but the
        // stamp must still change and force a recompute.
        g.add_dep(NodeId(0), NodeId(3), 5);
        cache.analysis(&g, &mask).unwrap();
        assert_eq!(cache.misses(), 2, "mutation must miss the cache");
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn fifo_eviction_bounds_entries() {
        let g = diamond();
        let mut cache = AnalysisCache::with_capacity(2);
        let masks: Vec<NodeSet> = (1..=3)
            .map(|k| NodeSet::from_iter_with_universe(g.len(), (0..k).map(NodeId)))
            .collect();
        for m in &masks {
            cache.analysis(&g, m).unwrap();
        }
        assert_eq!(cache.len(), 2);
        // Oldest (masks[0]) was evicted; re-querying it misses.
        cache.analysis(&g, &masks[0]).unwrap();
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn cyclic_mask_errors_and_is_not_cached() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 1);
        g.add_dep(b, a, 1);
        let mask = g.all_nodes();
        let mut cache = AnalysisCache::new();
        assert!(cache.analysis(&g, &mask).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn set_pool_recycles() {
        let mut scratch = Scratch::default();
        let mut s = scratch.acquire_set(100);
        s.insert(NodeId(7));
        scratch.release_set(s);
        let s2 = scratch.acquire_set(50);
        assert!(s2.is_empty(), "recycled set must come back empty");
        assert_eq!(s2.universe(), 50);
    }

    #[test]
    fn opts_builders() {
        let rel = [1u64, 2];
        let o = SchedOpts::default()
            .with_release(&rel)
            .with_backward(BackwardMode::Piecewise);
        assert_eq!(o.release, Some(&rel[..]));
        assert_eq!(o.backward, BackwardMode::Piecewise);
        assert!(!o.rec.enabled());
    }
}
