//! Node identifiers and per-node data.

use crate::machine::FuClass;
use std::fmt;

/// Identifier of a node (instruction) in a [`crate::DepGraph`].
///
/// Ids are dense indices assigned in insertion order; they are stable for
/// the lifetime of the graph, which lets algorithms use plain `Vec`s as
/// node-indexed maps.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of the basic block a node belongs to.
///
/// For a trace `BB1, …, BBm`, blocks are numbered `0..m` in trace order;
/// anticipatory scheduling never moves an instruction across a block
/// boundary in the *emitted* code, so the block id of a node is immutable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BB{}", self.0)
    }
}

/// Data attached to a node of a dependence graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeData {
    /// Human-readable label (mnemonic or paper letter such as `"x"`).
    pub label: String,
    /// Execution time in cycles (`>= 1`). The paper's optimal case uses
    /// unit execution times; Section 4.2 treats longer ones heuristically.
    pub exec_time: u32,
    /// Functional-unit class this instruction must execute on.
    pub class: FuClass,
    /// Basic block the instruction belongs to (trace order).
    pub block: BlockId,
    /// Position of the instruction within its source basic block.
    ///
    /// Used as a deterministic tie-breaker so that scheduling is stable and
    /// as the identity order for the "source order" baseline.
    pub source_pos: u32,
}

impl NodeData {
    /// Convenience constructor for a unit-time, any-unit node in block 0.
    pub fn simple(label: impl Into<String>) -> Self {
        NodeData {
            label: label.into(),
            exec_time: 1,
            class: FuClass::Any,
            block: BlockId(0),
            source_pos: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn block_id_display() {
        assert_eq!(format!("{}", BlockId(3)), "BB3");
    }

    #[test]
    fn simple_node_defaults() {
        let n = NodeData::simple("x");
        assert_eq!(n.label, "x");
        assert_eq!(n.exec_time, 1);
        assert_eq!(n.class, FuClass::Any);
        assert_eq!(n.block, BlockId(0));
    }
}
