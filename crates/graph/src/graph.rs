//! The dependence graph.

use crate::edge::{DepEdge, DepKind};
use crate::machine::FuClass;
use crate::node::{BlockId, NodeData, NodeId};
use crate::set::NodeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Source of fresh graph stamps. Process-global so a stamp identifies
/// one mutation state of one graph: no two distinct contents ever share
/// a stamp (a clone shares its original's stamp, but clone and original
/// are content-identical until either mutates, which re-stamps it).
static NEXT_STAMP: AtomicU64 = AtomicU64::new(0);

/// A dependence graph over instructions.
///
/// Nodes are added once and never removed; edges carry `<latency,
/// distance>` labels (see [`DepEdge`]). Parallel edges between the same
/// pair of nodes are allowed (e.g. a data dependence and a control
/// dependence); schedulers simply take the max constraint.
///
/// ```
/// use asched_graph::{BlockId, DepGraph, DepKind};
///
/// let mut g = DepGraph::new();
/// let load = g.add_simple("load", BlockId(0));
/// let mul = g.add_simple("mul", BlockId(0));
/// g.add_dep(load, mul, 1);                       // loop-independent
/// g.add_edge(mul, mul, 4, 1, DepKind::Data);     // loop-carried <4,1>
///
/// assert_eq!(g.len(), 2);
/// assert!(g.has_loop_carried());
/// assert_eq!(g.succs_in(load, &g.all_nodes()), vec![(mul, 1)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    nodes: Vec<NodeData>,
    /// Outgoing edges per node.
    out: Vec<Vec<DepEdge>>,
    /// Incoming edges per node.
    inn: Vec<Vec<DepEdge>>,
    /// Mutation stamp for analysis-cache invalidation (see
    /// [`DepGraph::stamp`]). `0` only on never-mutated (empty) graphs.
    stamp: u64,
}

impl DepGraph {
    /// Empty graph.
    pub fn new() -> Self {
        DepGraph::default()
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The graph's mutation stamp: refreshed to a process-globally fresh
    /// value on every mutation (`add_node`, `add_edge`, `node_mut`).
    /// Equal stamps imply identical graph content, so `(stamp, mask)`
    /// keys the derived-analysis cache in [`crate::AnalysisCache`];
    /// unequal stamps merely miss the cache (never unsoundness).
    #[inline]
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Refresh the stamp after a mutation.
    #[inline]
    fn touch(&mut self) {
        self.stamp = NEXT_STAMP.fetch_add(1, Ordering::Relaxed) + 1;
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, data: NodeData) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(data);
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        self.touch();
        id
    }

    /// Convenience: add a unit-time `Any`-class node in `block` labelled
    /// `label`, with `source_pos` equal to the number of nodes already in
    /// that block.
    pub fn add_simple(&mut self, label: impl Into<String>, block: BlockId) -> NodeId {
        let pos = self.nodes.iter().filter(|n| n.block == block).count() as u32;
        self.add_node(NodeData {
            label: label.into(),
            exec_time: 1,
            class: FuClass::Any,
            block,
            source_pos: pos,
        })
    }

    /// Add a dependence edge.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        latency: u32,
        distance: u32,
        kind: DepKind,
    ) {
        assert!(src.index() < self.len(), "src {src} out of range");
        assert!(dst.index() < self.len(), "dst {dst} out of range");
        assert!(
            src != dst || distance > 0,
            "self-edge {src} must be loop-carried"
        );
        let e = DepEdge {
            src,
            dst,
            latency,
            distance,
            kind,
        };
        self.out[src.index()].push(e);
        self.inn[dst.index()].push(e);
        self.touch();
    }

    /// Shorthand for a distance-0 data edge.
    pub fn add_dep(&mut self, src: NodeId, dst: NodeId, latency: u32) {
        self.add_edge(src, dst, latency, 0, DepKind::Data);
    }

    /// Node data for `id`.
    #[inline]
    pub fn node(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    /// Mutable node data for `id`. Conservatively refreshes the mutation
    /// stamp: the caller holds `&mut NodeData` and may change anything.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeData {
        self.touch();
        &mut self.nodes[id.index()]
    }

    /// Execution time of `id`.
    #[inline]
    pub fn exec_time(&self, id: NodeId) -> u32 {
        self.nodes[id.index()].exec_time
    }

    /// All node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Outgoing edges of `id` (all distances).
    #[inline]
    pub fn out_edges(&self, id: NodeId) -> &[DepEdge] {
        &self.out[id.index()]
    }

    /// Incoming edges of `id` (all distances).
    #[inline]
    pub fn in_edges(&self, id: NodeId) -> &[DepEdge] {
        &self.inn[id.index()]
    }

    /// Outgoing loop-independent (distance-0) edges of `id`.
    pub fn out_edges_li(&self, id: NodeId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.out[id.index()].iter().filter(|e| e.distance == 0)
    }

    /// Incoming loop-independent (distance-0) edges of `id`.
    pub fn in_edges_li(&self, id: NodeId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.inn[id.index()].iter().filter(|e| e.distance == 0)
    }

    /// All edges of the graph (all distances), in insertion order by
    /// source node.
    pub fn edges(&self) -> impl Iterator<Item = &DepEdge> + '_ {
        self.out.iter().flatten()
    }

    /// All loop-carried edges.
    pub fn loop_carried_edges(&self) -> impl Iterator<Item = &DepEdge> + '_ {
        self.edges().filter(|e| e.distance > 0)
    }

    /// True if the graph has at least one loop-carried edge.
    pub fn has_loop_carried(&self) -> bool {
        self.loop_carried_edges().next().is_some()
    }

    /// Maximum latency over all edges (0 for an edge-free graph).
    pub fn max_latency(&self) -> u32 {
        self.edges().map(|e| e.latency).max().unwrap_or(0)
    }

    /// Sum of execution times over the nodes of `mask`.
    pub fn total_work(&self, mask: &NodeSet) -> u64 {
        mask.iter().map(|id| self.exec_time(id) as u64).sum()
    }

    /// The set of all nodes.
    pub fn all_nodes(&self) -> NodeSet {
        NodeSet::full(self.len())
    }

    /// The set of nodes belonging to `block`.
    pub fn block_nodes(&self, block: BlockId) -> NodeSet {
        NodeSet::from_iter_with_universe(
            self.len(),
            self.node_ids().filter(|&id| self.node(id).block == block),
        )
    }

    /// The list of distinct blocks present, in ascending id order.
    pub fn blocks(&self) -> Vec<BlockId> {
        let mut blocks: Vec<BlockId> = self.nodes.iter().map(|n| n.block).collect();
        blocks.sort_unstable();
        blocks.dedup();
        blocks
    }

    /// Find a node by label (first match); handy in tests and examples.
    pub fn find(&self, label: &str) -> Option<NodeId> {
        self.node_ids().find(|&id| self.node(id).label == label)
    }

    /// Immediate loop-independent successors of `id` restricted to `mask`,
    /// deduplicated, with the max latency among parallel edges.
    pub fn succs_in(&self, id: NodeId, mask: &NodeSet) -> Vec<(NodeId, u32)> {
        let mut v: Vec<(NodeId, u32)> = Vec::new();
        for e in self.out_edges_li(id) {
            if !mask.contains(e.dst) {
                continue;
            }
            match v.iter_mut().find(|(d, _)| *d == e.dst) {
                Some((_, lat)) => *lat = (*lat).max(e.latency),
                None => v.push((e.dst, e.latency)),
            }
        }
        v
    }

    /// Immediate loop-independent predecessors of `id` restricted to
    /// `mask`, deduplicated with max latency.
    pub fn preds_in(&self, id: NodeId, mask: &NodeSet) -> Vec<(NodeId, u32)> {
        let mut v: Vec<(NodeId, u32)> = Vec::new();
        for e in self.in_edges_li(id) {
            if !mask.contains(e.src) {
                continue;
            }
            match v.iter_mut().find(|(s, _)| *s == e.src) {
                Some((_, lat)) => *lat = (*lat).max(e.latency),
                None => v.push((e.src, e.latency)),
            }
        }
        v
    }

    /// A deterministic tie-break key: (block, source position, id).
    pub fn stable_key(&self, id: NodeId) -> (u32, u32, u32) {
        let n = self.node(id);
        (n.block.0, n.source_pos, id.0)
    }

    /// A copy of this graph without anti and output dependences — the
    /// idealization of perfect register renaming (every storage-reuse
    /// constraint eliminated; true data, memory and control dependences
    /// kept). Used to measure how much of a schedule's cost is storage
    /// pressure rather than real dataflow.
    pub fn strip_false_deps(&self) -> DepGraph {
        let mut g = DepGraph::new();
        for id in self.node_ids() {
            g.add_node(self.node(id).clone());
        }
        for e in self.edges() {
            if !matches!(e.kind, DepKind::Anti | DepKind::Output) {
                g.add_edge(e.src, e.dst, e.latency, e.distance, e.kind);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_graph() -> (DepGraph, NodeId, NodeId) {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 1);
        (g, a, b)
    }

    #[test]
    fn add_and_query() {
        let (g, a, b) = two_node_graph();
        assert_eq!(g.len(), 2);
        assert_eq!(g.node(a).label, "a");
        assert_eq!(g.out_edges(a).len(), 1);
        assert_eq!(g.in_edges(b).len(), 1);
        assert_eq!(g.out_edges(a)[0].latency, 1);
        assert_eq!(g.max_latency(), 1);
        assert!(!g.has_loop_carried());
    }

    #[test]
    fn source_pos_autoincrements_per_block() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(1));
        let c = g.add_simple("c", BlockId(0));
        assert_eq!(g.node(a).source_pos, 0);
        assert_eq!(g.node(b).source_pos, 0);
        assert_eq!(g.node(c).source_pos, 1);
        assert_eq!(g.blocks(), vec![BlockId(0), BlockId(1)]);
        assert_eq!(g.block_nodes(BlockId(0)).len(), 2);
    }

    #[test]
    fn parallel_edges_dedup_with_max_latency() {
        let (mut g, a, b) = two_node_graph();
        g.add_edge(a, b, 3, 0, DepKind::Control);
        let mask = g.all_nodes();
        let succs = g.succs_in(a, &mask);
        assert_eq!(succs, vec![(b, 3)]);
        let preds = g.preds_in(b, &mask);
        assert_eq!(preds, vec![(a, 3)]);
    }

    #[test]
    fn mask_filters_neighbours() {
        let (g, a, b) = two_node_graph();
        let mut mask = NodeSet::new(g.len());
        mask.insert(a);
        assert!(g.succs_in(a, &mask).is_empty());
        mask.insert(b);
        assert_eq!(g.succs_in(a, &mask).len(), 1);
    }

    #[test]
    fn loop_carried_edges_filtered() {
        let (mut g, a, b) = two_node_graph();
        g.add_edge(b, a, 4, 1, DepKind::Data);
        assert!(g.has_loop_carried());
        assert_eq!(g.loop_carried_edges().count(), 1);
        assert_eq!(g.out_edges_li(b).count(), 0);
        assert_eq!(g.in_edges_li(a).count(), 0);
        assert_eq!(g.max_latency(), 4);
    }

    #[test]
    #[should_panic(expected = "self-edge")]
    fn distance_zero_self_edge_rejected() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        g.add_dep(a, a, 1);
    }

    #[test]
    fn find_by_label() {
        let (g, _, b) = two_node_graph();
        assert_eq!(g.find("b"), Some(b));
        assert_eq!(g.find("zzz"), None);
    }

    #[test]
    fn strip_false_deps_keeps_true_flow() {
        let (mut g, a, b) = two_node_graph();
        g.add_edge(b, a, 0, 1, DepKind::Anti);
        g.add_edge(a, a, 0, 1, DepKind::Output);
        g.add_edge(b, b, 2, 1, DepKind::Data);
        let s = g.strip_false_deps();
        assert_eq!(s.len(), g.len());
        assert!(s
            .edges()
            .all(|e| !matches!(e.kind, DepKind::Anti | DepKind::Output)));
        assert!(s.out_edges(a).iter().any(|e| e.dst == b)); // data kept
        assert!(s.out_edges(b).iter().any(|e| e.dst == b)); // LC data kept
        let _ = (a, b);
    }

    #[test]
    fn stamp_tracks_mutation() {
        let mut g = DepGraph::new();
        assert_eq!(g.stamp(), 0, "a fresh graph is unstamped");
        let a = g.add_simple("a", BlockId(0));
        let s1 = g.stamp();
        assert_ne!(s1, 0);
        let b = g.add_simple("b", BlockId(0));
        let s2 = g.stamp();
        assert_ne!(s1, s2);
        g.add_dep(a, b, 1);
        let s3 = g.stamp();
        assert_ne!(s2, s3);
        // Clone shares the stamp (content-identical)…
        let mut h = g.clone();
        assert_eq!(h.stamp(), g.stamp());
        // …until either side mutates.
        h.node_mut(a).exec_time = 9;
        assert_ne!(h.stamp(), g.stamp());
        assert_eq!(g.stamp(), s3, "original unaffected by clone mutation");
    }

    #[test]
    fn total_work_respects_mask() {
        let (mut g, a, _) = two_node_graph();
        g.node_mut(a).exec_time = 5;
        let mut mask = NodeSet::new(g.len());
        mask.insert(a);
        assert_eq!(g.total_work(&mask), 5);
        assert_eq!(g.total_work(&g.all_nodes()), 6);
    }
}
