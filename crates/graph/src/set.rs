//! Dense bitsets over graph nodes.
//!
//! Every algorithm in the workspace operates on a *subset* of a dependence
//! graph (e.g. `old ∪ new` in the paper's `merge` procedure), selected by a
//! [`NodeSet`]. Using subsets of one shared graph avoids re-indexing nodes
//! when blocks are merged, chopped and re-scheduled.

use crate::node::NodeId;
use std::fmt;

/// A set of [`NodeId`]s backed by a dense bitset.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct NodeSet {
    words: Vec<u64>,
    /// Number of node ids the set can address (capacity, not cardinality).
    universe: usize,
}

impl NodeSet {
    /// Empty set able to hold ids `0..universe`.
    pub fn new(universe: usize) -> Self {
        NodeSet {
            words: vec![0; universe.div_ceil(64)],
            universe,
        }
    }

    /// Set containing every id in `0..universe`.
    pub fn full(universe: usize) -> Self {
        let mut s = NodeSet::new(universe);
        for i in 0..universe {
            s.insert(NodeId(i as u32));
        }
        s
    }

    /// Build a set from an iterator of ids.
    pub fn from_iter_with_universe(
        universe: usize,
        iter: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        let mut s = NodeSet::new(universe);
        for id in iter {
            s.insert(id);
        }
        s
    }

    /// The number of ids this set can address.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Empty the set and re-target it at `universe` ids, keeping the
    /// word buffer's capacity (used by the scratch-pool recycling in
    /// [`crate::Scratch`]): no allocation when the new universe fits.
    pub fn reset(&mut self, universe: usize) {
        self.words.clear();
        self.words.resize(universe.div_ceil(64), 0);
        self.universe = universe;
    }

    /// Insert a node; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, id: NodeId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        assert!(id.index() < self.universe, "node {id} outside set universe");
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Remove a node; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, id: NodeId) -> bool {
        if id.index() >= self.universe {
            return false;
        }
        let (w, b) = (id.index() / 64, id.index() % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        if id.index() >= self.universe {
            return false;
        }
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn subtract(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// New set: union of the two operands.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// True if the two sets share no members. Universes may differ:
    /// words beyond the shorter set are treated as empty.
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        // A shorter word vector means everything beyond it is absent, so
        // zip (which stops at the shorter) is exact for intersection.
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// True if every member of `self` is in `other`. Universes may
    /// differ: members of `self` beyond `other`'s universe make this
    /// false.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        for (i, &a) in self.words.iter().enumerate() {
            let b = other.words.get(i).copied().unwrap_or(0);
            if a & !b != 0 {
                return false;
            }
        }
        true
    }

    /// Iterate members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(NodeId((wi * 64) as u32 + b))
                }
            })
        })
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<NodeId> for NodeSet {
    /// Builds a set whose universe is just big enough for the largest id.
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let ids: Vec<NodeId> = iter.into_iter().collect();
        let universe = ids.iter().map(|id| id.index() + 1).max().unwrap_or(0);
        NodeSet::from_iter_with_universe(universe, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(NodeId(0)));
        assert!(s.insert(NodeId(129)));
        assert!(!s.insert(NodeId(0)));
        assert!(s.contains(NodeId(0)));
        assert!(s.contains(NodeId(129)));
        assert!(!s.contains(NodeId(64)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(NodeId(0)));
        assert!(!s.remove(NodeId(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn out_of_universe_contains_is_false() {
        let s = NodeSet::new(10);
        assert!(!s.contains(NodeId(1000)));
    }

    #[test]
    fn iteration_order() {
        let mut s = NodeSet::new(200);
        for i in [5u32, 64, 65, 199, 0] {
            s.insert(NodeId(i));
        }
        let got: Vec<NodeId> = s.iter().collect();
        assert_eq!(got, ids(&[0, 5, 64, 65, 199]));
    }

    #[test]
    fn set_algebra() {
        let a = NodeSet::from_iter_with_universe(100, ids(&[1, 2, 3, 64]));
        let b = NodeSet::from_iter_with_universe(100, ids(&[3, 4, 64, 99]));
        let u = a.union(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), ids(&[1, 2, 3, 4, 64, 99]));

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), ids(&[3, 64]));

        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), ids(&[1, 2]));

        assert!(i.is_subset(&a));
        assert!(i.is_subset(&b));
        assert!(!a.is_disjoint(&b));
        assert!(d.is_disjoint(&b));
    }

    #[test]
    fn full_and_empty() {
        let f = NodeSet::full(70);
        assert_eq!(f.len(), 70);
        assert!(!f.is_empty());
        let e = NodeSet::new(70);
        assert!(e.is_empty());
        assert!(e.is_subset(&f));
    }

    /// Regression (found in code review): predicates across different
    /// universes must not silently truncate.
    #[test]
    fn predicates_across_universes() {
        let big: NodeSet = [NodeId(100)].into_iter().collect(); // universe 101
        let small = NodeSet::new(64);
        assert!(!big.is_subset(&small), "n100 is not in the empty small set");
        assert!(big.is_disjoint(&small));
        let mut small2 = NodeSet::new(64);
        small2.insert(NodeId(10));
        let mut big2: NodeSet = [NodeId(10), NodeId(100)].into_iter().collect();
        assert!(small2.is_subset(&big2));
        assert!(!big2.is_subset(&small2));
        assert!(!big2.is_disjoint(&small2));
        big2.remove(NodeId(10));
        assert!(big2.is_disjoint(&small2));
    }

    #[test]
    fn from_iterator_universe() {
        let s: NodeSet = ids(&[7, 3]).into_iter().collect();
        assert_eq!(s.universe(), 8);
        assert!(s.contains(NodeId(3)));
        assert!(s.contains(NodeId(7)));
        assert_eq!(s.len(), 2);
    }
}
