//! Graphviz (DOT) export for dependence graphs.

use crate::graph::DepGraph;
use std::fmt::Write;

/// Render `g` in Graphviz DOT syntax.
///
/// Loop-independent edges are solid and labelled with their latency;
/// loop-carried edges are dashed and labelled `<latency,distance>`.
/// Control-dependence edges are drawn dotted. Nodes are clustered by
/// basic block.
pub fn to_dot(g: &DepGraph, title: &str) -> String {
    let mut s = String::new();
    writeln!(s, "digraph \"{title}\" {{").unwrap();
    writeln!(s, "  rankdir=TB; node [shape=box, fontname=\"monospace\"];").unwrap();
    for block in g.blocks() {
        writeln!(s, "  subgraph cluster_{} {{", block.0).unwrap();
        writeln!(s, "    label=\"{block}\";").unwrap();
        for id in g.node_ids() {
            if g.node(id).block == block {
                let n = g.node(id);
                let extra = if n.exec_time > 1 {
                    format!(" ({}c)", n.exec_time)
                } else {
                    String::new()
                };
                writeln!(s, "    {} [label=\"{}{}\"];", id, n.label, extra).unwrap();
            }
        }
        writeln!(s, "  }}").unwrap();
    }
    for e in g.edges() {
        let style = match (e.kind, e.is_loop_carried()) {
            (crate::DepKind::Control, _) => "dotted",
            (_, true) => "dashed",
            _ => "solid",
        };
        let label = if e.is_loop_carried() {
            format!("<{},{}>", e.latency, e.distance)
        } else {
            format!("{}", e.latency)
        };
        writeln!(
            s,
            "  {} -> {} [label=\"{}\", style={}];",
            e.src, e.dst, label, style
        )
        .unwrap();
    }
    writeln!(s, "}}").unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::BlockId;
    use crate::DepKind;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = DepGraph::new();
        let a = g.add_simple("load", BlockId(0));
        let b = g.add_simple("mul", BlockId(1));
        g.node_mut(b).exec_time = 4;
        g.add_dep(a, b, 1);
        g.add_edge(b, a, 4, 1, DepKind::Data);
        let dot = to_dot(&g, "t");
        assert!(dot.contains("digraph \"t\""));
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("cluster_1"));
        assert!(dot.contains("load"));
        assert!(dot.contains("mul (4c)"));
        assert!(dot.contains("n0 -> n1 [label=\"1\", style=solid]"));
        assert!(dot.contains("n1 -> n0 [label=\"<4,1>\", style=dashed]"));
    }

    #[test]
    fn control_edges_dotted() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("bt", BlockId(0));
        g.add_edge(a, b, 0, 0, DepKind::Control);
        assert!(to_dot(&g, "c").contains("style=dotted"));
    }
}
