//! Dependence edges with `<latency, distance>` labels.

use crate::node::NodeId;
use std::fmt;

/// The kind of a dependence edge.
///
/// The scheduling algorithms only look at `<latency, distance>`; the kind
/// is carried for diagnostics, DOT output and for the dependence analysis
/// in `asched-ir` (e.g. memory disambiguation decisions).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DepKind {
    /// True (flow) data dependence: the source produces a value the
    /// destination reads.
    Data,
    /// Anti dependence: the destination overwrites a value the source
    /// reads.
    Anti,
    /// Output dependence: both write the same location.
    Output,
    /// Memory dependence that could not be disambiguated.
    Memory,
    /// Control dependence (everything in a block precedes its branch in
    /// the compiler's output schedule — paper Section 2.4).
    Control,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Data => "data",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
            DepKind::Memory => "memory",
            DepKind::Control => "control",
        };
        f.write_str(s)
    }
}

/// A dependence edge `src → dst` labelled `<latency, distance>`.
///
/// Semantics (paper Sections 2.1 and 5): instance `dst[k]` cannot start
/// until `latency` cycles after instance `src[k - distance]` completes:
///
/// ```text
/// start(dst, k) >= completion(src, k - distance) + latency
/// ```
///
/// `distance = 0` is a loop-independent dependence; `distance > 0` is
/// loop-carried. Within a single basic block or trace only distance-0 edges
/// constrain the schedule.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DepEdge {
    /// Source node (producer).
    pub src: NodeId,
    /// Destination node (consumer).
    pub dst: NodeId,
    /// Cycles that must elapse between `src` completing and `dst`
    /// starting. `0` means back-to-back issue is allowed.
    pub latency: u32,
    /// Iteration distance; `0` for loop-independent dependences.
    pub distance: u32,
    /// Dependence kind (informational).
    pub kind: DepKind,
}

impl DepEdge {
    /// True if this edge constrains instructions of the same iteration.
    #[inline]
    pub fn is_loop_independent(&self) -> bool {
        self.distance == 0
    }

    /// True if this edge is loop-carried.
    #[inline]
    pub fn is_loop_carried(&self) -> bool {
        self.distance > 0
    }
}

impl fmt::Display for DepEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} <{},{}> ({})",
            self.src, self.dst, self.latency, self.distance, self.kind
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_carried_predicate() {
        let li = DepEdge {
            src: NodeId(0),
            dst: NodeId(1),
            latency: 1,
            distance: 0,
            kind: DepKind::Data,
        };
        assert!(li.is_loop_independent());
        assert!(!li.is_loop_carried());

        let lc = DepEdge { distance: 2, ..li };
        assert!(lc.is_loop_carried());
        assert!(!lc.is_loop_independent());
    }

    #[test]
    fn display_format() {
        let e = DepEdge {
            src: NodeId(3),
            dst: NodeId(4),
            latency: 4,
            distance: 1,
            kind: DepKind::Data,
        };
        assert_eq!(format!("{e}"), "n3 -> n4 <4,1> (data)");
    }
}
