//! Independent schedule validation.
//!
//! Every scheduler in the workspace (rank, baselines, anticipatory,
//! modulo) is checked against this module in tests: a schedule must
//! respect all loop-independent dependences with their latencies, must not
//! over-subscribe functional units, must place instructions on compatible
//! units, and — when deadlines are given — must meet them.

use crate::graph::DepGraph;
use crate::machine::MachineModel;
use crate::node::NodeId;
use crate::schedule::Schedule;
use crate::set::NodeSet;
use std::fmt;

/// A constraint violated by a schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// A node in the mask has no start time.
    Unscheduled(NodeId),
    /// A scheduled node lies outside the mask.
    OutsideMask(NodeId),
    /// `start(dst) < completion(src) + latency` for a distance-0 edge.
    DependenceViolated {
        /// Producer node.
        src: NodeId,
        /// Consumer node.
        dst: NodeId,
        /// Required gap in cycles.
        latency: u32,
    },
    /// Two instructions overlap on the same unit.
    UnitOverlap {
        /// First instruction.
        a: NodeId,
        /// Second instruction.
        b: NodeId,
        /// Unit index.
        unit: usize,
    },
    /// Instruction placed on a unit of an incompatible class.
    WrongUnitClass(NodeId),
    /// Unit index out of range for the machine.
    NoSuchUnit(NodeId),
    /// Completion exceeds the node's deadline.
    DeadlineMissed {
        /// The late node.
        node: NodeId,
        /// Its deadline.
        deadline: i64,
        /// Its actual completion time.
        completion: u64,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::Unscheduled(n) => write!(f, "node {n} not scheduled"),
            ValidationError::OutsideMask(n) => write!(f, "node {n} scheduled but outside mask"),
            ValidationError::DependenceViolated { src, dst, latency } => {
                write!(f, "dependence {src} -> {dst} (latency {latency}) violated")
            }
            ValidationError::UnitOverlap { a, b, unit } => {
                write!(f, "nodes {a} and {b} overlap on unit {unit}")
            }
            ValidationError::WrongUnitClass(n) => write!(f, "node {n} on incompatible unit"),
            ValidationError::NoSuchUnit(n) => write!(f, "node {n} on nonexistent unit"),
            ValidationError::DeadlineMissed {
                node,
                deadline,
                completion,
            } => write!(
                f,
                "node {node} completes at {completion}, after deadline {deadline}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate `sched` against `g` restricted to `mask` on `machine`.
///
/// `deadlines`, if given, is indexed by `NodeId::index()`; only masked
/// nodes are checked.
pub fn validate_schedule(
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    sched: &Schedule,
    deadlines: Option<&[i64]>,
) -> Result<(), ValidationError> {
    // Coverage.
    for id in mask.iter() {
        if sched.start(id).is_none() {
            return Err(ValidationError::Unscheduled(id));
        }
    }
    for id in sched.scheduled() {
        if !mask.contains(id) {
            return Err(ValidationError::OutsideMask(id));
        }
    }

    // Unit assignment sanity.
    for id in mask.iter() {
        let u = sched.unit(id).expect("checked above");
        if u >= machine.num_units() {
            return Err(ValidationError::NoSuchUnit(id));
        }
        if !machine.unit_accepts(u, g.node(id).class) {
            return Err(ValidationError::WrongUnitClass(id));
        }
    }

    // Dependences (distance-0 edges inside the mask).
    for id in mask.iter() {
        for e in g.out_edges_li(id) {
            if !mask.contains(e.dst) {
                continue;
            }
            let c_src = sched.completion(e.src).expect("checked above");
            let s_dst = sched.start(e.dst).expect("checked above");
            if s_dst < c_src + e.latency as u64 {
                return Err(ValidationError::DependenceViolated {
                    src: e.src,
                    dst: e.dst,
                    latency: e.latency,
                });
            }
        }
    }

    // Unit capacity: no two instructions overlap on the same unit.
    let mut per_unit: Vec<Vec<NodeId>> = vec![Vec::new(); machine.num_units()];
    for id in mask.iter() {
        per_unit[sched.unit(id).unwrap()].push(id);
    }
    for (u, nodes) in per_unit.iter().enumerate() {
        let mut intervals: Vec<(u64, u64, NodeId)> = nodes
            .iter()
            .map(|&id| (sched.start(id).unwrap(), sched.completion(id).unwrap(), id))
            .collect();
        intervals.sort_unstable();
        for pair in intervals.windows(2) {
            let (_, end_a, a) = pair[0];
            let (start_b, _, b) = pair[1];
            if start_b < end_a {
                return Err(ValidationError::UnitOverlap { a, b, unit: u });
            }
        }
    }

    // Deadlines.
    if let Some(d) = deadlines {
        for id in mask.iter() {
            let c = sched.completion(id).unwrap();
            if (c as i64) > d[id.index()] {
                return Err(ValidationError::DeadlineMissed {
                    node: id,
                    deadline: d[id.index()],
                    completion: c,
                });
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::FuClass;
    use crate::node::{BlockId, NodeData};

    fn chain_graph() -> (DepGraph, NodeId, NodeId) {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 1);
        (g, a, b)
    }

    #[test]
    fn valid_schedule_passes() {
        let (g, a, b) = chain_graph();
        let m = MachineModel::single_unit(2);
        let mut s = Schedule::new(2);
        s.assign(a, 0, 0, 1);
        s.assign(b, 2, 0, 1); // respects latency 1
        assert!(validate_schedule(&g, &g.all_nodes(), &m, &s, None).is_ok());
    }

    #[test]
    fn latency_violation_caught() {
        let (g, a, b) = chain_graph();
        let m = MachineModel::single_unit(2);
        let mut s = Schedule::new(2);
        s.assign(a, 0, 0, 1);
        s.assign(b, 1, 0, 1); // too early: needs completion(a)+1 = 2
        let err = validate_schedule(&g, &g.all_nodes(), &m, &s, None).unwrap_err();
        assert!(matches!(err, ValidationError::DependenceViolated { .. }));
    }

    #[test]
    fn unscheduled_node_caught() {
        let (g, a, _) = chain_graph();
        let m = MachineModel::single_unit(2);
        let mut s = Schedule::new(2);
        s.assign(a, 0, 0, 1);
        let err = validate_schedule(&g, &g.all_nodes(), &m, &s, None).unwrap_err();
        assert!(matches!(err, ValidationError::Unscheduled(_)));
    }

    #[test]
    fn outside_mask_caught() {
        let (g, a, b) = chain_graph();
        let m = MachineModel::single_unit(2);
        let mut mask = NodeSet::new(2);
        mask.insert(a);
        let mut s = Schedule::new(2);
        s.assign(a, 0, 0, 1);
        s.assign(b, 2, 0, 1);
        let err = validate_schedule(&g, &mask, &m, &s, None).unwrap_err();
        assert!(matches!(err, ValidationError::OutsideMask(_)));
    }

    #[test]
    fn unit_overlap_caught() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let m = MachineModel::single_unit(2);
        let mut s = Schedule::new(2);
        s.assign(a, 0, 0, 2);
        s.assign(b, 1, 0, 1); // overlaps a on unit 0
        let err = validate_schedule(&g, &g.all_nodes(), &m, &s, None).unwrap_err();
        assert!(matches!(err, ValidationError::UnitOverlap { .. }));
    }

    #[test]
    fn wrong_class_caught() {
        let mut g = DepGraph::new();
        let a = g.add_node(NodeData {
            label: "f".into(),
            exec_time: 1,
            class: FuClass::Float,
            block: BlockId(0),
            source_pos: 0,
        });
        let m = MachineModel {
            units: vec![FuClass::Fixed],
            window: 1,
        };
        let mut s = Schedule::new(1);
        s.assign(a, 0, 0, 1);
        let err = validate_schedule(&g, &g.all_nodes(), &m, &s, None).unwrap_err();
        assert!(matches!(err, ValidationError::WrongUnitClass(_)));
    }

    #[test]
    fn deadline_miss_caught() {
        let (g, a, b) = chain_graph();
        let m = MachineModel::single_unit(2);
        let mut s = Schedule::new(2);
        s.assign(a, 0, 0, 1);
        s.assign(b, 2, 0, 1); // completes at 3
        let deadlines = vec![1i64, 2];
        let err = validate_schedule(&g, &g.all_nodes(), &m, &s, Some(&deadlines)).unwrap_err();
        assert!(matches!(err, ValidationError::DeadlineMissed { .. }));
        let loose = vec![10i64, 10];
        assert!(validate_schedule(&g, &g.all_nodes(), &m, &s, Some(&loose)).is_ok());
    }

    #[test]
    fn cross_mask_edges_ignored() {
        let (g, a, b) = chain_graph();
        let m = MachineModel::single_unit(2);
        let mut mask = NodeSet::new(2);
        mask.insert(b);
        let mut s = Schedule::new(2);
        s.assign(b, 0, 0, 1); // a not in mask, so edge a->b is not checked
        assert!(validate_schedule(&g, &mask, &m, &s, None).is_ok());
        let _ = a;
    }
}
