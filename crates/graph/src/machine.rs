//! Machine models: functional units and the hardware lookahead window.

use std::fmt;

/// Functional-unit class.
///
/// The paper's optimal results hold for a single functional unit; Section
/// 4.2 discusses the "assigned processor" model where each instruction must
/// run on a unit of a particular type. We model the classes that appear in
/// the paper's RS/6000 example plus a wildcard.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum FuClass {
    /// No class requirement: runs on any unit (and a unit of class `Any`
    /// runs every instruction).
    #[default]
    Any,
    /// Fixed-point (integer) unit.
    Fixed,
    /// Floating-point unit.
    Float,
    /// Load/store (memory) unit.
    Memory,
    /// Branch unit.
    Branch,
}

impl FuClass {
    /// All concrete classes (excluding `Any`).
    pub const CONCRETE: [FuClass; 4] = [
        FuClass::Fixed,
        FuClass::Float,
        FuClass::Memory,
        FuClass::Branch,
    ];
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::Any => "any",
            FuClass::Fixed => "fixed",
            FuClass::Float => "float",
            FuClass::Memory => "memory",
            FuClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// Whether an instruction of class `instr` may execute on a unit of class
/// `unit`.
#[inline]
pub(crate) fn compatible(unit: FuClass, instr: FuClass) -> bool {
    unit == FuClass::Any || instr == FuClass::Any || unit == instr
}

/// A machine: a set of functional units plus the size of the hardware
/// instruction-lookahead window.
///
/// The window model is the one of paper Section 2.3: at any instant the
/// window holds `W` instructions that are contiguous in the dynamic
/// instruction stream; the processor may issue any ready instruction in
/// the window, and the window advances only when its first instruction has
/// been issued. `W` is "usually very small (typically < 10)".
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MachineModel {
    /// One entry per functional unit, giving the class of instructions the
    /// unit serves (`Any` = universal unit).
    pub units: Vec<FuClass>,
    /// Lookahead-window size `W >= 1`. `W = 1` means no lookahead: strict
    /// in-order single-instruction issue from the stream head.
    pub window: usize,
}

impl MachineModel {
    /// The restricted machine of the paper's optimality results: a single
    /// universal functional unit, with the given window size.
    pub fn single_unit(window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        MachineModel {
            units: vec![FuClass::Any],
            window,
        }
    }

    /// A machine with `n` identical universal units.
    pub fn uniform(n: usize, window: usize) -> Self {
        assert!(n >= 1, "need at least one unit");
        assert!(window >= 1, "window must be at least 1");
        MachineModel {
            units: vec![FuClass::Any; n],
            window,
        }
    }

    /// An RS/6000-flavoured assigned-unit machine: one fixed-point, one
    /// floating-point, one memory and one branch unit.
    pub fn rs6000_like(window: usize) -> Self {
        MachineModel {
            units: vec![
                FuClass::Fixed,
                FuClass::Float,
                FuClass::Memory,
                FuClass::Branch,
            ],
            window,
        }
    }

    /// Number of functional units.
    #[inline]
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// True if this is the single-unit machine of the optimality results.
    #[inline]
    pub fn is_single_unit(&self) -> bool {
        self.units.len() == 1
    }

    /// Whether instruction class `instr` can execute on unit `u`.
    #[inline]
    pub fn unit_accepts(&self, u: usize, instr: FuClass) -> bool {
        compatible(self.units[u], instr)
    }

    /// Indices of the units that can run instructions of class `instr`.
    pub fn units_for(&self, instr: FuClass) -> impl Iterator<Item = usize> + '_ {
        self.units
            .iter()
            .enumerate()
            .filter(move |(_, &u)| compatible(u, instr))
            .map(|(i, _)| i)
    }

    /// Number of units that can run instructions of class `instr`.
    pub fn capacity_for(&self, instr: FuClass) -> usize {
        self.units_for(instr).count()
    }

    /// Returns a copy of this machine with a different window size.
    pub fn with_window(&self, window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        MachineModel {
            units: self.units.clone(),
            window,
        }
    }
}

impl Default for MachineModel {
    /// The paper's default analysis machine: one unit, window of 2 (the
    /// size used in the Figure 2 walk-through).
    fn default() -> Self {
        MachineModel::single_unit(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_rules() {
        assert!(compatible(FuClass::Any, FuClass::Fixed));
        assert!(compatible(FuClass::Fixed, FuClass::Any));
        assert!(compatible(FuClass::Fixed, FuClass::Fixed));
        assert!(!compatible(FuClass::Fixed, FuClass::Float));
    }

    #[test]
    fn single_unit_machine() {
        let m = MachineModel::single_unit(4);
        assert!(m.is_single_unit());
        assert_eq!(m.window, 4);
        assert_eq!(m.capacity_for(FuClass::Branch), 1);
    }

    #[test]
    fn assigned_units() {
        let m = MachineModel::rs6000_like(2);
        assert_eq!(m.num_units(), 4);
        assert_eq!(m.capacity_for(FuClass::Fixed), 1);
        assert_eq!(m.units_for(FuClass::Float).collect::<Vec<_>>(), vec![1]);
        // An `Any` instruction can run anywhere.
        assert_eq!(m.capacity_for(FuClass::Any), 4);
    }

    #[test]
    fn uniform_machine() {
        let m = MachineModel::uniform(3, 8);
        assert_eq!(m.num_units(), 3);
        assert!(!m.is_single_unit());
        assert_eq!(m.capacity_for(FuClass::Memory), 3);
    }

    #[test]
    fn with_window_keeps_units() {
        let m = MachineModel::rs6000_like(2).with_window(16);
        assert_eq!(m.window, 16);
        assert_eq!(m.num_units(), 4);
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_rejected() {
        MachineModel::single_unit(0);
    }
}
