//! Reachability over the loop-independent subgraph.
//!
//! The Rank Algorithm needs, for each node `x`, the set of *descendants*
//! of `x` (paper Section 2.1: "x must complete sufficiently early to allow
//! all of its descendants to complete by their ranks"). We compute all
//! descendant sets with one reverse-topological sweep of bitset unions.

use crate::graph::DepGraph;
use crate::set::NodeSet;
use crate::topo::{topo_order, CycleError};

/// For each node in `mask`, the set of its strict descendants within
/// `mask` (transitive successors over distance-0 edges).
///
/// The returned vector is indexed by `NodeId::index()`; entries for nodes
/// outside `mask` are empty sets.
pub fn descendants(g: &DepGraph, mask: &NodeSet) -> Result<Vec<NodeSet>, CycleError> {
    let order = topo_order(g, mask)?;
    Ok(descendants_with_order(g, mask, &order))
}

/// [`descendants`] reusing a topological order the caller already
/// computed — the Rank Algorithm needs both, and sorting twice per rank
/// run would double the topo cost in merge's relaxation loops.
pub fn descendants_with_order(
    g: &DepGraph,
    mask: &NodeSet,
    order: &[crate::NodeId],
) -> Vec<NodeSet> {
    let mut desc = vec![NodeSet::new(g.len()); g.len()];
    for &id in order.iter().rev() {
        let mut acc = NodeSet::new(g.len());
        for e in g.out_edges_li(id) {
            if mask.contains(e.dst) {
                acc.insert(e.dst);
                acc.union_with(&desc[e.dst.index()]);
            }
        }
        desc[id.index()] = acc;
    }
    desc
}

/// For each node in `mask`, the set of its strict ancestors within `mask`
/// (transitive predecessors over distance-0 edges).
///
/// Not used by the Rank Algorithm itself (which needs descendants only);
/// kept as the public transpose for downstream analyses — e.g. live-range
/// or dominance-style filters over a trace — and pinned against
/// `descendants` by the transpose property test.
pub fn ancestors(g: &DepGraph, mask: &NodeSet) -> Result<Vec<NodeSet>, CycleError> {
    let order = topo_order(g, mask)?;
    let mut anc = vec![NodeSet::new(g.len()); g.len()];
    for &id in order.iter() {
        let mut acc = NodeSet::new(g.len());
        for e in g.in_edges_li(id) {
            if mask.contains(e.src) {
                acc.insert(e.src);
                acc.union_with(&anc[e.src.index()]);
            }
        }
        anc[id.index()] = acc;
    }
    Ok(anc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::BlockId;
    use crate::NodeId;

    fn fig1_like() -> (DepGraph, [NodeId; 6]) {
        // x -> {w,b,r}; e -> {w,b}; w -> a; b -> a (all latency 1).
        let mut g = DepGraph::new();
        let x = g.add_simple("x", BlockId(0));
        let e = g.add_simple("e", BlockId(0));
        let w = g.add_simple("w", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let a = g.add_simple("a", BlockId(0));
        let r = g.add_simple("r", BlockId(0));
        g.add_dep(x, w, 1);
        g.add_dep(x, b, 1);
        g.add_dep(x, r, 1);
        g.add_dep(e, w, 1);
        g.add_dep(e, b, 1);
        g.add_dep(w, a, 1);
        g.add_dep(b, a, 1);
        (g, [x, e, w, b, a, r])
    }

    #[test]
    fn descendants_of_fig1() {
        let (g, [x, e, w, b, a, r]) = fig1_like();
        let d = descendants(&g, &g.all_nodes()).unwrap();
        let dx: Vec<NodeId> = d[x.index()].iter().collect();
        assert_eq!(dx, vec![w, b, a, r]);
        let de: Vec<NodeId> = d[e.index()].iter().collect();
        assert_eq!(de, vec![w, b, a]);
        assert_eq!(d[w.index()].iter().collect::<Vec<_>>(), vec![a]);
        assert!(d[a.index()].is_empty());
        assert!(d[r.index()].is_empty());
    }

    #[test]
    fn ancestors_mirror_descendants() {
        let (g, nodes) = fig1_like();
        let mask = g.all_nodes();
        let d = descendants(&g, &mask).unwrap();
        let a = ancestors(&g, &mask).unwrap();
        for &u in &nodes {
            for &v in &nodes {
                assert_eq!(
                    d[u.index()].contains(v),
                    a[v.index()].contains(u),
                    "descendant/ancestor mismatch for {u} {v}"
                );
            }
        }
    }

    #[test]
    fn mask_restricts_reach() {
        let (g, [x, _e, w, _b, a, _r]) = fig1_like();
        let mut mask = NodeSet::new(g.len());
        mask.insert(x);
        mask.insert(w);
        mask.insert(a);
        let d = descendants(&g, &mask).unwrap();
        assert_eq!(d[x.index()].iter().collect::<Vec<_>>(), vec![w, a]);
    }
}
