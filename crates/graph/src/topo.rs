//! Topological ordering of the loop-independent subgraph.

use crate::graph::DepGraph;
use crate::node::NodeId;
use crate::set::NodeSet;
use std::fmt;

/// Error: the distance-0 subgraph restricted to the mask has a cycle.
///
/// Loop-independent dependences must form a DAG (a cycle would mean an
/// instruction transitively depends on itself within one iteration).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleError {
    /// A node that is part of (or downstream of) the cycle.
    pub witness: NodeId,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "loop-independent dependence cycle involving {}",
            self.witness
        )
    }
}

impl std::error::Error for CycleError {}

/// Topological order of `mask`'s nodes over distance-0 edges.
///
/// The order is deterministic: among ready nodes, the one with the smallest
/// [`DepGraph::stable_key`] comes first (Kahn's algorithm with a stable
/// choice). Returns [`CycleError`] if the restricted subgraph is cyclic.
pub fn topo_order(g: &DepGraph, mask: &NodeSet) -> Result<Vec<NodeId>, CycleError> {
    let mut indeg = vec![0usize; g.len()];
    let mut members: Vec<NodeId> = mask.iter().collect();
    for &id in &members {
        for e in g.in_edges_li(id) {
            if mask.contains(e.src) {
                indeg[id.index()] += 1;
            }
        }
    }
    // Ready list kept sorted by stable key (small graphs: linear insert is
    // fine and keeps the output deterministic).
    members.sort_by_key(|&id| g.stable_key(id));
    let mut ready: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|&id| indeg[id.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(mask.len());
    let mut cursor = 0;
    while cursor < ready.len() {
        let id = ready[cursor];
        cursor += 1;
        order.push(id);
        // Collect newly-ready successors, then merge them in stable-key
        // order at the tail.
        let mut newly: Vec<NodeId> = Vec::new();
        for e in g.out_edges_li(id) {
            if !mask.contains(e.dst) {
                continue;
            }
            indeg[e.dst.index()] -= 1;
            if indeg[e.dst.index()] == 0 {
                newly.push(e.dst);
            }
        }
        newly.sort_by_key(|&n| g.stable_key(n));
        ready.extend(newly);
    }
    if order.len() != mask.len() {
        let witness = mask
            .iter()
            .find(|&id| indeg[id.index()] > 0)
            .expect("cycle implies a node with nonzero in-degree");
        return Err(CycleError { witness });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::DepKind;
    use crate::node::BlockId;

    #[test]
    fn simple_chain() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let c = g.add_simple("c", BlockId(0));
        g.add_dep(a, b, 0);
        g.add_dep(b, c, 0);
        let order = topo_order(&g, &g.all_nodes()).unwrap();
        assert_eq!(order, vec![a, b, c]);
    }

    #[test]
    fn diamond_is_deterministic() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let c = g.add_simple("c", BlockId(0));
        let d = g.add_simple("d", BlockId(0));
        g.add_dep(a, b, 0);
        g.add_dep(a, c, 0);
        g.add_dep(b, d, 0);
        g.add_dep(c, d, 0);
        let order = topo_order(&g, &g.all_nodes()).unwrap();
        assert_eq!(order, vec![a, b, c, d]);
    }

    #[test]
    fn cycle_detected() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 0);
        g.add_dep(b, a, 0);
        assert!(topo_order(&g, &g.all_nodes()).is_err());
    }

    #[test]
    fn loop_carried_edges_ignored() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 0);
        // Back edge, but loop-carried: no cycle in the LI subgraph.
        g.add_edge(b, a, 1, 1, DepKind::Data);
        let order = topo_order(&g, &g.all_nodes()).unwrap();
        assert_eq!(order, vec![a, b]);
    }

    #[test]
    fn mask_restricts_cycle_check() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let c = g.add_simple("c", BlockId(0));
        g.add_dep(a, b, 0);
        g.add_dep(b, a, 0); // cycle between a and b
        g.add_dep(b, c, 0);
        let mut mask = NodeSet::new(g.len());
        mask.insert(c);
        // c alone is acyclic even though the full graph is not.
        assert_eq!(topo_order(&g, &mask).unwrap(), vec![c]);
        assert!(topo_order(&g, &g.all_nodes()).is_err());
    }

    #[test]
    fn empty_mask() {
        let g = DepGraph::new();
        assert!(topo_order(&g, &NodeSet::new(0)).unwrap().is_empty());
    }
}
