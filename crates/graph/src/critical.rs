//! Critical-path heights over the loop-independent subgraph.
//!
//! `height(x)` is the minimum number of cycles between the *start* of `x`
//! and the completion of the whole subgraph, following dependence chains:
//!
//! ```text
//! height(x) = exec(x) + max over LI successors s of (latency(x,s) + height(s))
//! ```
//!
//! Heights drive the classic critical-path list-scheduling baselines and
//! give the dependence-only lower bound on the makespan.

use crate::graph::DepGraph;
use crate::node::NodeId;
use crate::set::NodeSet;
use crate::topo::{topo_order, CycleError};

/// Heights for every node of `mask`, indexed by `NodeId::index()`
/// (entries outside the mask are 0).
pub fn heights(g: &DepGraph, mask: &NodeSet) -> Result<Vec<u64>, CycleError> {
    let order = topo_order(g, mask)?;
    let mut h = vec![0u64; g.len()];
    for &id in order.iter().rev() {
        let mut best = 0u64;
        for e in g.out_edges_li(id) {
            if mask.contains(e.dst) {
                best = best.max(e.latency as u64 + h[e.dst.index()]);
            }
        }
        h[id.index()] = g.exec_time(id) as u64 + best;
    }
    Ok(h)
}

/// Length of the critical path of `mask`: the dependence-only lower bound
/// on the makespan of any schedule (regardless of machine width).
pub fn critical_path_length(g: &DepGraph, mask: &NodeSet) -> Result<u64, CycleError> {
    Ok(heights(g, mask)?.into_iter().max().unwrap_or(0))
}

/// A priority list ordered by decreasing height (ties broken by the
/// stable source key), as used by critical-path list scheduling.
pub fn height_priority(g: &DepGraph, mask: &NodeSet) -> Result<Vec<NodeId>, CycleError> {
    let h = heights(g, mask)?;
    let mut v: Vec<NodeId> = mask.iter().collect();
    v.sort_by(|&a, &b| {
        h[b.index()]
            .cmp(&h[a.index()])
            .then_with(|| g.stable_key(a).cmp(&g.stable_key(b)))
    });
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::BlockId;

    #[test]
    fn chain_heights() {
        // a -(1)-> b -(0)-> c, unit exec times.
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let c = g.add_simple("c", BlockId(0));
        g.add_dep(a, b, 1);
        g.add_dep(b, c, 0);
        let h = heights(&g, &g.all_nodes()).unwrap();
        assert_eq!(h[c.index()], 1);
        assert_eq!(h[b.index()], 2);
        assert_eq!(h[a.index()], 4); // 1 + 1 (latency) + 2
        assert_eq!(critical_path_length(&g, &g.all_nodes()).unwrap(), 4);
    }

    #[test]
    fn multicycle_exec_times_counted() {
        let mut g = DepGraph::new();
        let a = g.add_simple("mul", BlockId(0));
        let b = g.add_simple("use", BlockId(0));
        g.node_mut(a).exec_time = 3;
        g.add_dep(a, b, 2);
        let h = heights(&g, &g.all_nodes()).unwrap();
        assert_eq!(h[a.index()], 3 + 2 + 1);
    }

    #[test]
    fn priority_orders_by_height() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0)); // independent, low height
        let c = g.add_simple("c", BlockId(0));
        g.add_dep(a, c, 1);
        let p = height_priority(&g, &g.all_nodes()).unwrap();
        assert_eq!(p[0], a);
        // b and c both have height 1; source order breaks the tie.
        assert_eq!(p[1], b);
        assert_eq!(p[2], c);
    }

    #[test]
    fn empty_mask_has_zero_cp() {
        let g = DepGraph::new();
        assert_eq!(critical_path_length(&g, &NodeSet::new(0)).unwrap(), 0);
    }
}
