//! Steady-state loop throughput measurement.
//!
//! Paper Section 2.4: *"a schedule which is optimal for a single basic
//! block can be suboptimal in steady-state, and a schedule which is
//! suboptimal for a single basic block can be optimal in steady-state."*
//! The anticipatory loop algorithms of Section 5 therefore select
//! candidate schedules by their steady-state behaviour; this module
//! measures it by running the window simulator over enough iterations for
//! the per-iteration increment to stabilize.
//!
//! Every measurement here runs the simulator at least twice on streams of
//! the same shape, so all helpers thread the caller's [`SchedCtx`]
//! through to [`simulate`] and reuse its simulator scratch.

use crate::stream::InstStream;
use crate::window::{simulate, IssuePolicy};
use asched_graph::{DepGraph, MachineModel, NodeId, SchedCtx, SchedOpts};

/// Warm-up iterations discarded before measuring the period.
const WARMUP: u32 = 8;
/// Iterations measured after warm-up.
const MEASURE: u32 = 64;

/// Completion time of `n` iterations of a single-block loop whose body is
/// emitted in `order`.
pub fn loop_completion(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    order: &[NodeId],
    n: u32,
) -> u64 {
    if n == 0 || order.is_empty() {
        return 0;
    }
    let stream = InstStream::loop_iterations(order, n);
    simulate(
        ctx,
        g,
        machine,
        &stream,
        IssuePolicy::Strict,
        &SchedOpts::default(),
    )
    .completion
}

/// Completion time of `n` iterations of a loop enclosing a trace of
/// blocks (Section 5.1), each block emitted in its given order.
pub fn trace_loop_completion(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    block_orders: &[Vec<NodeId>],
    n: u32,
) -> u64 {
    if n == 0 {
        return 0;
    }
    let stream = InstStream::trace_loop_iterations(block_orders, n);
    simulate(
        ctx,
        g,
        machine,
        &stream,
        IssuePolicy::Strict,
        &SchedOpts::default(),
    )
    .completion
}

/// Steady-state initiation interval of the loop as an exact rational:
/// `(completion(WARMUP + MEASURE) - completion(WARMUP), MEASURE)`.
///
/// For the periodic schedules the paper's loops settle into, this is the
/// exact cycles-per-iteration (e.g. Figure 3's schedules measure 7/1 and
/// 6/1; Figure 8's measure 5/1 and 4/1).
pub fn steady_period_rational(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    order: &[NodeId],
) -> (u64, u64) {
    steady_period_with(ctx, g, machine, order, WARMUP.max(MEASURE))
}

/// [`steady_period_rational`] with a caller-chosen warm-up/measurement
/// span: `(completion(2·warm) − completion(warm), warm)`. The single
/// home for the "two completions, one difference" idiom every loop
/// scheduler and experiment uses.
pub fn steady_period_with(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    order: &[NodeId],
    warm: u32,
) -> (u64, u64) {
    let warm = warm.max(2);
    let c1 = loop_completion(ctx, g, machine, order, warm);
    let c2 = loop_completion(ctx, g, machine, order, 2 * warm);
    (c2 - c1, warm as u64)
}

/// Steady-state period of a multi-block loop's trace stream (the
/// Section 5.1 counterpart of [`steady_period_with`]).
pub fn trace_steady_period_with(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    block_orders: &[Vec<NodeId>],
    warm: u32,
) -> (u64, u64) {
    let warm = warm.max(2);
    let c1 = trace_loop_completion(ctx, g, machine, block_orders, warm);
    let c2 = trace_loop_completion(ctx, g, machine, block_orders, 2 * warm);
    (c2 - c1, warm as u64)
}

/// Steady-state initiation interval as a float (cycles per iteration).
pub fn steady_period(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    order: &[NodeId],
) -> f64 {
    let (num, den) = steady_period_rational(ctx, g, machine, order);
    num as f64 / den as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::{BlockId, DepKind};

    /// Figure 8's three-node loop: 1 -(1)-> 3, 2 -(1)-> 3, and a
    /// loop-carried edge 3 -(1, distance 1)-> 1.
    fn fig8() -> (DepGraph, [NodeId; 3]) {
        let mut g = DepGraph::new();
        let n1 = g.add_simple("1", BlockId(0));
        let n2 = g.add_simple("2", BlockId(0));
        let n3 = g.add_simple("3", BlockId(0));
        g.add_dep(n1, n3, 1);
        g.add_dep(n2, n3, 1);
        g.add_edge(n3, n1, 1, 1, DepKind::Data);
        (g, [n1, n2, n3])
    }

    /// Paper Figure 8: schedule S1 = 1 2 3 completes n iterations in
    /// 5n - 1 cycles; S2 = 2 1 3 completes them in 4n cycles. The
    /// figure's completion times are those of the *constructed schedule*
    /// (the unrolled sequence executed in order), i.e. window size 1.
    #[test]
    fn fig8_completion_formulas() {
        let (g, [n1, n2, n3]) = fig8();
        let m = MachineModel::single_unit(1);
        let mut ctx = SchedCtx::new();
        for n in 1..=6u32 {
            let s1 = loop_completion(&mut ctx, &g, &m, &[n1, n2, n3], n);
            assert_eq!(s1, 5 * n as u64 - 1, "S1 at n={n}");
            let s2 = loop_completion(&mut ctx, &g, &m, &[n2, n1, n3], n);
            assert_eq!(s2, 4 * n as u64, "S2 at n={n}");
        }
    }

    #[test]
    fn steady_period_with_matches_rational() {
        let (g, [n1, n2, n3]) = fig8();
        let m = MachineModel::single_unit(1);
        let mut ctx = SchedCtx::new();
        let (a, b) = steady_period_with(&mut ctx, &g, &m, &[n2, n1, n3], 16);
        assert_eq!(a, 4 * b);
        let (c, d) = trace_steady_period_with(&mut ctx, &g, &m, &[vec![n2, n1, n3]], 16);
        assert_eq!(c, 4 * d);
    }

    #[test]
    fn fig8_steady_periods() {
        let (g, [n1, n2, n3]) = fig8();
        let m = MachineModel::single_unit(1);
        let mut ctx = SchedCtx::new();
        assert_eq!(
            steady_period_rational(&mut ctx, &g, &m, &[n1, n2, n3]),
            (5 * 64, 64)
        );
        assert_eq!(
            steady_period_rational(&mut ctx, &g, &m, &[n2, n1, n3]),
            (4 * 64, 64)
        );
        assert!((steady_period(&mut ctx, &g, &m, &[n2, n1, n3]) - 4.0).abs() < 1e-9);
    }

    /// With an actual lookahead window (W >= 2) the hardware itself
    /// recovers most of the bad order's loss — the paper's premise that
    /// hardware lookahead overlaps work across boundaries.
    #[test]
    fn fig8_lookahead_repairs_bad_order() {
        let (g, [n1, n2, n3]) = fig8();
        let w1 = MachineModel::single_unit(1);
        let w4 = MachineModel::single_unit(4);
        let mut ctx = SchedCtx::new();
        let bad_w1 = steady_period(&mut ctx, &g, &w1, &[n1, n2, n3]);
        let bad_w4 = steady_period(&mut ctx, &g, &w4, &[n1, n2, n3]);
        let good_w4 = steady_period(&mut ctx, &g, &w4, &[n2, n1, n3]);
        assert!(bad_w4 < bad_w1, "window should improve the bad order");
        assert!(good_w4 <= bad_w4 + 1e-9);
    }

    #[test]
    fn zero_iterations() {
        let (g, [n1, n2, n3]) = fig8();
        let m = MachineModel::single_unit(4);
        assert_eq!(
            loop_completion(&mut SchedCtx::new(), &g, &m, &[n1, n2, n3], 0),
            0
        );
    }

    #[test]
    fn trace_loop_matches_single_block_when_one_block() {
        let (g, [n1, n2, n3]) = fig8();
        let m = MachineModel::single_unit(4);
        let mut ctx = SchedCtx::new();
        let a = loop_completion(&mut ctx, &g, &m, &[n2, n1, n3], 5);
        let b = trace_loop_completion(&mut ctx, &g, &m, &[vec![n2, n1, n3]], 5);
        assert_eq!(a, b);
    }

    /// A self-recurrence bounds the period regardless of order.
    #[test]
    fn recurrence_bound_respected() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 0);
        g.add_edge(a, a, 5, 1, DepKind::Data); // II >= 6
        let m = MachineModel::single_unit(8);
        let p = steady_period(&mut SchedCtx::new(), &g, &m, &[a, b]);
        assert!(p >= 6.0 - 1e-9, "period {p} below recurrence bound");
    }
}
