//! Dynamic instruction streams.

use asched_graph::NodeId;

/// One dynamic instance of an instruction: which static node, and in
/// which loop iteration (0 for straight-line code).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StreamInst {
    /// The static instruction.
    pub node: NodeId,
    /// Iteration instance (paper notation `BBj[k]`).
    pub iter: u32,
}

/// A dynamic instruction stream: the exact order in which instructions
/// enter the lookahead window.
///
/// The compiler controls this order *within* each basic block; the
/// hardware window then overlaps execution across block (and iteration)
/// boundaries.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct InstStream {
    items: Vec<StreamInst>,
}

impl InstStream {
    /// Stream for a single pass over `order` (iteration 0).
    pub fn from_order(order: &[NodeId]) -> Self {
        InstStream {
            items: order
                .iter()
                .map(|&node| StreamInst { node, iter: 0 })
                .collect(),
        }
    }

    /// Stream for a trace: per-block emitted orders concatenated
    /// (iteration 0). This is footnote 7 of the paper: the emitted code
    /// keeps blocks contiguous; overlap happens only inside the window.
    pub fn from_blocks(block_orders: &[Vec<NodeId>]) -> Self {
        let mut items = Vec::new();
        for order in block_orders {
            items.extend(order.iter().map(|&node| StreamInst { node, iter: 0 }));
        }
        InstStream { items }
    }

    /// Stream for `n` iterations of a single-block loop with body order
    /// `order`: `order[1], order[2], …, order[n]` in paper notation.
    pub fn loop_iterations(order: &[NodeId], n: u32) -> Self {
        let mut items = Vec::with_capacity(order.len() * n as usize);
        for k in 0..n {
            items.extend(order.iter().map(|&node| StreamInst { node, iter: k }));
        }
        InstStream { items }
    }

    /// Stream for `n` iterations of a loop enclosing a trace of blocks
    /// (paper Section 5: `BB1[1..], …, BBm[1], BB1[2], …`).
    pub fn trace_loop_iterations(block_orders: &[Vec<NodeId>], n: u32) -> Self {
        let mut items = Vec::new();
        for k in 0..n {
            for order in block_orders {
                items.extend(order.iter().map(|&node| StreamInst { node, iter: k }));
            }
        }
        InstStream { items }
    }

    /// The instances, in stream order.
    #[inline]
    pub fn items(&self) -> &[StreamInst] {
        &self.items
    }

    /// Number of dynamic instances.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the stream is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Append another stream (used by the branch-misprediction model to
    /// splice off-trace continuations).
    pub fn extend(&mut self, other: &InstStream) {
        self.items.extend_from_slice(&other.items);
    }

    /// Append a single dynamic instance (used by software pipelining to
    /// build prolog/kernel/epilog streams instance by instance).
    pub fn push(&mut self, node: NodeId, iter: u32) {
        self.items.push(StreamInst { node, iter });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn from_order_single_iter() {
        let s = InstStream::from_order(&ids(&[2, 0, 1]));
        assert_eq!(s.len(), 3);
        assert_eq!(
            s.items()[0],
            StreamInst {
                node: NodeId(2),
                iter: 0
            }
        );
        assert!(s.items().iter().all(|i| i.iter == 0));
    }

    #[test]
    fn from_blocks_concatenates() {
        let s = InstStream::from_blocks(&[ids(&[0, 1]), ids(&[2])]);
        let nodes: Vec<u32> = s.items().iter().map(|i| i.node.0).collect();
        assert_eq!(nodes, vec![0, 1, 2]);
    }

    #[test]
    fn loop_iterations_tag_iters() {
        let s = InstStream::loop_iterations(&ids(&[0, 1]), 3);
        assert_eq!(s.len(), 6);
        assert_eq!(
            s.items()[2],
            StreamInst {
                node: NodeId(0),
                iter: 1
            }
        );
        assert_eq!(
            s.items()[5],
            StreamInst {
                node: NodeId(1),
                iter: 2
            }
        );
    }

    #[test]
    fn trace_loop_interleaves_blocks_within_iterations() {
        let s = InstStream::trace_loop_iterations(&[ids(&[0]), ids(&[1])], 2);
        let got: Vec<(u32, u32)> = s.items().iter().map(|i| (i.node.0, i.iter)).collect();
        assert_eq!(got, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn extend_splices() {
        let mut a = InstStream::from_order(&ids(&[0]));
        let b = InstStream::from_order(&ids(&[1]));
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }
}
