//! Branch prediction and misprediction modelling.
//!
//! The paper's safety argument (Section 1) relies on hardware branch
//! prediction filling the lookahead window with instructions from the
//! basic block *predicted* to execute next, with a safe rollback on a
//! mispredict. This module models the performance side of that story:
//! along a trace, the window overlaps adjacent blocks only across
//! *correctly predicted* boundaries; a mispredicted boundary flushes the
//! eagerly-fetched instructions (losing the overlap) and pays a fixed
//! penalty. Flushing discards fetched-but-unissued work only — results
//! already in flight still arrive at their original cycle, so
//! cross-boundary latencies are preserved across a mispredict.
//!
//! Used by experiment E12 to show how the benefit of anticipatory
//! scheduling varies with prediction accuracy.

use crate::stream::InstStream;
use crate::window::{simulate, IssuePolicy};
use asched_graph::{DepGraph, MachineModel, NodeId, SchedCtx, SchedOpts};
use std::collections::HashMap;

/// Execute a trace whose blocks are emitted in `block_orders`, where
/// boundary `i` (between block `i` and block `i+1`) was predicted
/// correctly iff `predicted_correct[i]`.
///
/// Correctly-predicted runs of blocks execute as one stream (full window
/// overlap); each mispredicted boundary costs `penalty` cycles and
/// restarts the window (no overlap across it). A flush does **not**
/// cancel in-flight producers: data dependences from instructions that
/// completed in an earlier segment still hold at their absolute cycle,
/// carried into the new segment as release times — so a misprediction
/// can never make a long-latency result arrive *earlier* than it would
/// on the correctly-predicted path. Returns the total cycle count.
///
/// # Panics
///
/// Panics if `predicted_correct.len() + 1 != block_orders.len()`.
pub fn simulate_with_prediction(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    block_orders: &[Vec<NodeId>],
    predicted_correct: &[bool],
    penalty: u64,
) -> u64 {
    assert_eq!(
        predicted_correct.len() + 1,
        block_orders.len().max(1),
        "need one prediction per block boundary"
    );
    if block_orders.is_empty() {
        return 0;
    }
    // Absolute finish cycle of every instruction run in an earlier
    // segment (all instances are iteration 0 along a trace).
    let mut abs_finish: HashMap<u32, u64> = HashMap::new();
    let mut base = 0u64;
    let mut segment: Vec<Vec<NodeId>> = vec![block_orders[0].clone()];
    for (i, correct) in predicted_correct.iter().enumerate() {
        if *correct {
            segment.push(block_orders[i + 1].clone());
        } else {
            let done = run_segment(ctx, g, machine, &segment, base, &mut abs_finish);
            base = done + penalty;
            segment = vec![block_orders[i + 1].clone()];
        }
    }
    run_segment(ctx, g, machine, &segment, base, &mut abs_finish)
}

/// Simulate one segment starting at absolute cycle `base`, honouring
/// results still in flight from earlier segments; records the segment's
/// absolute finish times into `abs_finish` and returns the absolute
/// completion cycle of the segment.
fn run_segment(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    blocks: &[Vec<NodeId>],
    base: u64,
    abs_finish: &mut HashMap<u32, u64>,
) -> u64 {
    let stream = InstStream::from_blocks(blocks);
    // Cross-segment dependences: producer already finished at a known
    // absolute cycle -> consumer releases at (finish + latency) - base.
    let release: Vec<u64> = stream
        .items()
        .iter()
        .map(|inst| {
            g.in_edges(inst.node)
                .iter()
                .filter(|e| e.distance == 0)
                .filter_map(|e| {
                    abs_finish
                        .get(&e.src.0)
                        .map(|&f| (f + e.latency as u64).saturating_sub(base))
                })
                .max()
                .unwrap_or(0)
        })
        .collect();
    let opts = SchedOpts::default().with_release(&release);
    let res = simulate(ctx, g, machine, &stream, IssuePolicy::Strict, &opts);
    for (j, inst) in stream.items().iter().enumerate() {
        abs_finish.insert(inst.node.0, base + res.finish[j]);
    }
    base + res.completion
}

/// Expected cycle count of a trace under per-boundary prediction
/// accuracies (e.g. from `asched-ir`'s `Cfg::trace_accuracies`):
/// enumerate the boundary-outcome combinations exactly when there are at
/// most 16 boundaries (2^16 terms with probability weights), which every
/// realistic trace satisfies.
///
/// # Panics
///
/// Panics on length mismatch or more than 16 boundaries.
pub fn expected_cycles(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    block_orders: &[Vec<NodeId>],
    accuracies: &[f64],
    penalty: u64,
) -> f64 {
    assert_eq!(
        accuracies.len() + 1,
        block_orders.len().max(1),
        "need one accuracy per block boundary"
    );
    assert!(accuracies.len() <= 16, "too many boundaries to enumerate");
    let b = accuracies.len();
    let mut total = 0.0;
    for mask in 0u32..(1 << b) {
        let outcomes: Vec<bool> = (0..b).map(|i| mask & (1 << i) != 0).collect();
        let mut prob = 1.0;
        for (i, &correct) in outcomes.iter().enumerate() {
            prob *= if correct {
                accuracies[i]
            } else {
                1.0 - accuracies[i]
            };
        }
        if prob == 0.0 {
            continue;
        }
        let cycles = simulate_with_prediction(ctx, g, machine, block_orders, &outcomes, penalty);
        total += prob * cycles as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::BlockId;

    /// Two blocks with an overlap opportunity: block 0 ends with a
    /// latency gap that block 1's first instruction can fill.
    fn overlap_trace() -> (DepGraph, Vec<Vec<NodeId>>) {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 2); // idle slots before b
        let c = g.add_simple("c", BlockId(1));
        let d = g.add_simple("d", BlockId(1));
        g.add_dep(c, d, 0);
        (g, vec![vec![a, b], vec![c, d]])
    }

    #[test]
    fn correct_prediction_overlaps() {
        let (g, blocks) = overlap_trace();
        let m = MachineModel::single_unit(3);
        let t = simulate_with_prediction(&mut SchedCtx::new(), &g, &m, &blocks, &[true], 5);
        // One stream: a@0, c@1, d@2, b@3 -> 4 cycles.
        assert_eq!(t, 4);
    }

    #[test]
    fn mispredict_splits_and_pays() {
        let (g, blocks) = overlap_trace();
        let m = MachineModel::single_unit(3);
        let t = simulate_with_prediction(&mut SchedCtx::new(), &g, &m, &blocks, &[false], 5);
        // Block 0 alone: a@0, b@3 -> 4; penalty 5; block 1: 2. Total 11.
        assert_eq!(t, 4 + 5 + 2);
    }

    #[test]
    fn all_correct_equals_plain_simulation() {
        let (g, blocks) = overlap_trace();
        let m = MachineModel::single_unit(3);
        let plain = crate::simulate(
            &mut SchedCtx::new(),
            &g,
            &m,
            &InstStream::from_blocks(&blocks),
            IssuePolicy::Strict,
            &SchedOpts::default(),
        )
        .completion;
        let pred = simulate_with_prediction(&mut SchedCtx::new(), &g, &m, &blocks, &[true], 99);
        assert_eq!(plain, pred);
    }

    /// Regression (found in code review): a flush must not cancel
    /// in-flight producers. With a long-latency edge crossing the
    /// boundary, the mispredicted path can never beat the correct one.
    #[test]
    fn mispredict_keeps_cross_boundary_latency() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(1));
        g.add_dep(a, b, 19); // result arrives at cycle 1 + 19 = 20
        let blocks = vec![vec![a], vec![b]];
        let m = MachineModel::single_unit(4);
        let correct = simulate_with_prediction(&mut SchedCtx::new(), &g, &m, &blocks, &[true], 5);
        assert_eq!(correct, 21); // a@0, b@20
        let wrong = simulate_with_prediction(&mut SchedCtx::new(), &g, &m, &blocks, &[false], 5);
        // Segment 0 completes at 1; refetch at 6; b still waits for the
        // in-flight result at absolute cycle 20.
        assert_eq!(wrong, 21);
        assert!(wrong >= correct, "misprediction must never be cheaper");
    }

    /// The in-flight constraint composes with the penalty when the
    /// penalty dominates the remaining latency.
    #[test]
    fn penalty_dominates_short_latency() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(1));
        g.add_dep(a, b, 2); // available at cycle 3
        let blocks = vec![vec![a], vec![b]];
        let m = MachineModel::single_unit(4);
        // Refetch at 1 + 5 = 6 > 3: b issues immediately after refetch.
        let wrong = simulate_with_prediction(&mut SchedCtx::new(), &g, &m, &blocks, &[false], 5);
        assert_eq!(wrong, 7);
    }

    #[test]
    fn single_block_no_boundaries() {
        let (g, blocks) = overlap_trace();
        let m = MachineModel::single_unit(3);
        let t = simulate_with_prediction(&mut SchedCtx::new(), &g, &m, &blocks[..1], &[], 5);
        assert_eq!(t, 4);
    }

    #[test]
    fn expected_cycles_interpolates() {
        let (g, blocks) = overlap_trace();
        let m = MachineModel::single_unit(3);
        let always = expected_cycles(&mut SchedCtx::new(), &g, &m, &blocks, &[1.0], 5);
        let never = expected_cycles(&mut SchedCtx::new(), &g, &m, &blocks, &[0.0], 5);
        assert!((always - 4.0).abs() < 1e-9);
        assert!((never - 11.0).abs() < 1e-9);
        let half = expected_cycles(&mut SchedCtx::new(), &g, &m, &blocks, &[0.5], 5);
        assert!((half - 7.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one prediction per block boundary")]
    fn wrong_prediction_count_panics() {
        let (g, blocks) = overlap_trace();
        let m = MachineModel::single_unit(3);
        simulate_with_prediction(&mut SchedCtx::new(), &g, &m, &blocks, &[], 5);
    }
}
