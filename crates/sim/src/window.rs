//! The cycle-level window simulator.

use crate::stream::InstStream;
use asched_graph::{DepGraph, MachineModel, SchedCtx, SchedOpts};
use asched_obs::{record, Event, Pass, Recorder, StallKind};

/// How the hardware arbitrates when an earlier ready instruction cannot
/// issue (e.g. its functional unit is busy) but a later ready one could.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IssuePolicy {
    /// The paper's Ordering Constraint, read strictly: the hardware never
    /// issues a later ready instruction before an earlier ready one, so
    /// the in-window scan stops at the first ready-but-blocked
    /// instruction. On a single-unit machine this is equivalent to
    /// [`IssuePolicy::Scan`].
    #[default]
    Strict,
    /// Scan past ready-but-blocked instructions and issue later ready
    /// ones on other units (a more aggressive multi-unit hardware).
    Scan,
}

/// Result of simulating a stream.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Completion time of the whole stream (makespan).
    pub completion: u64,
    /// Issue (start) cycle per stream index.
    pub issue: Vec<u64>,
    /// Finish cycle per stream index.
    pub finish: Vec<u64>,
    /// Cycles during which work was pending but nothing issued.
    pub stall_cycles: u64,
}

impl SimResult {
    /// Completion time of everything up to and including iteration `k`.
    pub fn completion_of_iter(&self, stream: &InstStream, k: u32) -> u64 {
        stream
            .items()
            .iter()
            .zip(&self.finish)
            .filter(|(inst, _)| inst.iter <= k)
            .map(|(_, &f)| f)
            .max()
            .unwrap_or(0)
    }
}

/// Simulate `stream` on `machine` with the paper's lookahead-window
/// model.
///
/// Dependences come from `g` (all edges, including loop-carried ones):
/// instance `(v, k)` waits for `finish(u, k - distance) + latency` for
/// every in-edge `u → v`; producer instances that are not in the stream
/// (e.g. iterations before the first) impose no constraint.
///
/// `opts.release` supplies per-*position* release times: stream position
/// `j` cannot issue before `release[j]`, regardless of its in-stream
/// producers (the branch-misprediction model uses this to carry
/// dependences from instructions that completed in a flushed-away window
/// segment). Note the positional meaning — every other algorithm indexes
/// release by node. An enabled `opts.rec` sees the run as one timed
/// `simulate` pass: every issue emits an `issue` event, every executed
/// cycle a `window_occupancy` snapshot, and every no-progress stretch
/// one `stall` event (classified `head_blocked` when the window head was
/// ready but its functional unit busy, `data_wait` otherwise) covering
/// all consecutive stalled cycles.
///
/// The simulator's working state (occurrence map, producer lists, issue
/// flags, unit clocks) lives in `ctx.scratch.sim`, so steady-state
/// measurements that simulate the same loop at many iteration counts
/// reuse their buffers; only the returned issue/finish vectors allocate.
///
/// ```
/// use asched_graph::{BlockId, DepGraph, MachineModel, SchedCtx, SchedOpts};
/// use asched_sim::{simulate, InstStream, IssuePolicy};
///
/// // a -(2 cycles)-> b, with independent c emitted after b.
/// let mut g = DepGraph::new();
/// let a = g.add_simple("a", BlockId(0));
/// let b = g.add_simple("b", BlockId(0));
/// let c = g.add_simple("c", BlockId(0));
/// g.add_dep(a, b, 2);
///
/// let stream = InstStream::from_order(&[a, b, c]);
/// let mut ctx = SchedCtx::new();
/// let opts = SchedOpts::default();
/// // No lookahead: c waits behind the stalled b.
/// let w1 = simulate(&mut ctx, &g, &MachineModel::single_unit(1), &stream, IssuePolicy::Strict, &opts);
/// assert_eq!(w1.completion, 5);
/// // A 2-entry window slides c into the latency gap.
/// let w2 = simulate(&mut ctx, &g, &MachineModel::single_unit(2), &stream, IssuePolicy::Strict, &opts);
/// assert_eq!(w2.completion, 4);
/// ```
///
/// # Panics
///
/// Panics if the stream places a producer *after* its same-iteration
/// consumer (a malformed emitted order — the hardware would deadlock),
/// or if `opts.release` is shorter than the stream.
pub fn simulate(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    stream: &InstStream,
    policy: IssuePolicy,
    opts: &SchedOpts,
) -> SimResult {
    asched_obs::timed_span(opts.rec, Pass::Simulate, opts.span, || {
        simulate_inner(ctx, g, machine, stream, policy, opts.release, opts.rec)
    })
}

fn simulate_inner(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    stream: &InstStream,
    policy: IssuePolicy,
    release: Option<&[u64]>,
    rec: &dyn Recorder,
) -> SimResult {
    let items = stream.items();
    if let Some(rel) = release {
        assert!(rel.len() >= items.len(), "release must cover the stream");
    }
    // A machine/graph mismatch would otherwise surface as a bogus
    // "deadlock" deep in the issue loop — reject it up front.
    for inst in items {
        let class = g.node(inst.node).class;
        assert!(
            machine.units_for(class).next().is_some(),
            "no functional unit on this machine can run node {} (class {class:?})",
            inst.node
        );
    }
    let n = items.len();
    let w = machine.window;
    let crate::SimScratch {
        occ,
        producers,
        issued,
        unit_free,
    } = &mut ctx.scratch.sim;

    // Occurrence map: (node, iter) -> stream position.
    occ.clear();
    occ.reserve(n);
    for (j, inst) in items.iter().enumerate() {
        let prev = occ.insert((inst.node.0, inst.iter), j);
        assert!(
            prev.is_none(),
            "instance ({}, iter {}) appears twice in the stream",
            inst.node,
            inst.iter
        );
    }

    // Per-instance producer lists: (producer position, latency). The
    // outer Vec is truncated, never shrunk, so inner allocations from
    // earlier (possibly longer) streams are reused.
    if producers.len() < n {
        producers.resize_with(n, Vec::new);
    }
    for (j, inst) in items.iter().enumerate() {
        let ps = &mut producers[j];
        ps.clear();
        for e in g.in_edges(inst.node) {
            if e.distance > inst.iter {
                continue; // before the first iteration: no constraint
            }
            let k = inst.iter - e.distance;
            if let Some(&p) = occ.get(&(e.src.0, k)) {
                assert!(
                    p != j,
                    "self-dependence with distance 0 in the stream at {j}"
                );
                assert!(
                    p < j,
                    "producer {} (iter {k}) appears after its consumer {} in the stream",
                    e.src,
                    e.dst
                );
                ps.push((p, e.latency));
            }
        }
    }

    issued.clear();
    issued.resize(n, false);
    let mut issue = vec![0u64; n];
    let mut finish = vec![0u64; n];
    unit_free.clear();
    unit_free.resize(machine.num_units(), 0);
    let mut head = 0usize;
    let mut stall_cycles = 0u64;
    let mut t = 0u64;

    while head < n {
        let mut issued_this_cycle = false;
        let end = (head + w).min(n);
        if rec.enabled() {
            let occupancy = (head..end).filter(|&j| !issued[j]).count() as u32;
            rec.record(&Event::WindowOccupancy {
                cycle: t,
                occupancy,
            });
        }
        'scan: for j in head..end {
            if issued[j] {
                continue;
            }
            // Ready time: all producers must have issued.
            let mut ready = release.map_or(0, |r| r[j]);
            let mut producers_done = true;
            for &(p, lat) in &producers[j] {
                if !issued[p] {
                    producers_done = false;
                    break;
                }
                ready = ready.max(finish[p] + lat as u64);
            }
            if !producers_done || ready > t {
                continue; // not ready: the window looks past it
            }
            // Ready: find a free compatible unit.
            let class = g.node(items[j].node).class;
            match machine.units_for(class).find(|&u| unit_free[u] <= t) {
                Some(u) => {
                    let exec = g.exec_time(items[j].node) as u64;
                    issued[j] = true;
                    issue[j] = t;
                    finish[j] = t + exec;
                    unit_free[u] = t + exec;
                    issued_this_cycle = true;
                    record!(
                        rec,
                        Event::Issue {
                            cycle: t,
                            pos: j as u32,
                            node: items[j].node.0,
                            unit: u as u32,
                        }
                    );
                }
                None => match policy {
                    // Ready but blocked: a strict machine will not let
                    // anything later overtake it.
                    IssuePolicy::Strict => break 'scan,
                    IssuePolicy::Scan => continue,
                },
            }
        }
        while head < n && issued[head] {
            head += 1;
        }
        if head >= n {
            break;
        }
        if issued_this_cycle {
            // The window may have admitted new instructions; they can
            // issue at the next cycle at the earliest.
            t += 1;
            continue;
        }
        stall_cycles += 1;
        // Nothing issued: jump to the next event.
        let mut next = u64::MAX;
        for &f in unit_free.iter() {
            if f > t {
                next = next.min(f);
            }
        }
        let end = (head + w).min(n);
        for j in head..end {
            if issued[j] {
                continue;
            }
            let mut ready = release.map_or(0, |r| r[j]);
            let mut producers_done = true;
            for &(p, lat) in &producers[j] {
                if !issued[p] {
                    producers_done = false;
                    break;
                }
                ready = ready.max(finish[p] + lat as u64);
            }
            if producers_done && ready > t {
                next = next.min(ready);
            }
        }
        assert!(
            next != u64::MAX,
            "simulator deadlocked at cycle {t} (head {head})"
        );
        if rec.enabled() {
            // Classify: was the head ready this cycle (only its unit
            // was busy) or still waiting on operand latency?
            let mut ready = release.map_or(0, |r| r[head]);
            let mut producers_done = true;
            for &(p, lat) in &producers[head] {
                if !issued[p] {
                    producers_done = false;
                    break;
                }
                ready = ready.max(finish[p] + lat as u64);
            }
            let kind = if producers_done && ready <= t {
                StallKind::HeadBlocked
            } else {
                StallKind::DataWait
            };
            rec.record(&Event::Stall {
                cycle: t,
                head: head as u32,
                kind,
                cycles: next - t,
            });
        }
        // Count the skipped stall cycles too.
        stall_cycles += next - t - 1;
        t = next;
    }

    let completion = finish.iter().copied().max().unwrap_or(0);
    SimResult {
        completion,
        issue,
        finish,
        stall_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::{BlockId, DepKind};

    fn m(window: usize) -> MachineModel {
        MachineModel::single_unit(window)
    }

    fn sim(g: &DepGraph, machine: &MachineModel, s: &InstStream, policy: IssuePolicy) -> SimResult {
        simulate(
            &mut SchedCtx::new(),
            g,
            machine,
            s,
            policy,
            &SchedOpts::default(),
        )
    }

    /// Straight-line chain with latency: matches the static schedule.
    #[test]
    fn chain_simulates_like_schedule() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 2);
        let s = InstStream::from_order(&[a, b]);
        let r = sim(&g, &m(2), &s, IssuePolicy::Strict);
        assert_eq!(r.issue, vec![0, 3]);
        assert_eq!(r.completion, 4);
        assert_eq!(r.stall_cycles, 2);
    }

    /// W = 1 forces strict in-order issue even when a later instruction
    /// is ready.
    #[test]
    fn window_one_has_no_lookahead() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let c = g.add_simple("c", BlockId(0)); // independent
        g.add_dep(a, b, 2);
        let s = InstStream::from_order(&[a, b, c]);
        let r1 = sim(&g, &m(1), &s, IssuePolicy::Strict);
        assert_eq!(r1.issue, vec![0, 3, 4]);
        assert_eq!(r1.completion, 5);
        // W = 2: c slides into the latency gap.
        let r2 = sim(&g, &m(2), &s, IssuePolicy::Strict);
        assert_eq!(r2.issue, vec![0, 3, 1]);
        assert_eq!(r2.completion, 4);
    }

    /// The window advances only when its head has issued: an instruction
    /// W positions past a stalled head cannot issue.
    #[test]
    fn window_does_not_advance_past_stalled_head() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0)); // stalls on a
        let c = g.add_simple("c", BlockId(0)); // independent
        let d = g.add_simple("d", BlockId(0)); // independent
        g.add_dep(a, b, 3);
        let s = InstStream::from_order(&[a, b, c, d]);
        // W=2: after a issues, window = {b, c}; b stalls until 4, c can
        // issue at 1 — but the window does NOT slide past the unissued
        // head b, so d stays outside until b issues at 4. d issues at 5.
        let r = sim(&g, &m(2), &s, IssuePolicy::Strict);
        assert_eq!(r.issue, vec![0, 4, 1, 5]);
        assert_eq!(r.completion, 6);
        // W=1: everything in order.
        let r1 = sim(&g, &m(1), &s, IssuePolicy::Strict);
        assert_eq!(r1.issue, vec![0, 4, 5, 6]);
    }

    /// Loop-carried dependences constrain later iterations.
    #[test]
    fn loop_carried_dependence_respected() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        // a[k] depends on a[k-1] with latency 2.
        g.add_edge(a, a, 2, 1, DepKind::Data);
        let s = InstStream::loop_iterations(&[a], 3);
        let r = sim(&g, &m(4), &s, IssuePolicy::Strict);
        assert_eq!(r.issue, vec![0, 3, 6]);
        assert_eq!(r.completion, 7);
    }

    /// Ordering Constraint: an earlier *ready* instruction issues before
    /// a later ready one.
    #[test]
    fn in_window_priority_is_stream_order() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let s = InstStream::from_order(&[a, b]);
        let r = sim(&g, &m(2), &s, IssuePolicy::Strict);
        assert_eq!(r.issue[0], 0);
        assert_eq!(r.issue[1], 1);
    }

    /// Multi-unit: Strict stops at a ready-but-blocked instruction; Scan
    /// lets a later one use the other unit class.
    #[test]
    fn strict_vs_scan_policies() {
        use asched_graph::{FuClass, NodeData};
        let mut g = DepGraph::new();
        let f1 = g.add_node(NodeData {
            label: "f1".into(),
            exec_time: 2,
            class: FuClass::Float,
            block: BlockId(0),
            source_pos: 0,
        });
        let f2 = g.add_node(NodeData {
            label: "f2".into(),
            exec_time: 1,
            class: FuClass::Float,
            block: BlockId(0),
            source_pos: 1,
        });
        let i1 = g.add_node(NodeData {
            label: "i1".into(),
            exec_time: 1,
            class: FuClass::Fixed,
            block: BlockId(0),
            source_pos: 2,
        });
        let machine = MachineModel {
            units: vec![FuClass::Float, FuClass::Fixed],
            window: 3,
        };
        let s = InstStream::from_order(&[f1, f2, i1]);
        // Cycle 0: f1 issues (float unit busy until 2). f2 is ready but
        // blocked; Strict stops the scan there, so i1 cannot overtake it
        // and waits until f2 issues at cycle 2.
        let strict = sim(&g, &machine, &s, IssuePolicy::Strict);
        assert_eq!(strict.issue, vec![0, 2, 2]);
        // Scan skips the blocked f2 and issues i1 immediately.
        let scan = sim(&g, &machine, &s, IssuePolicy::Scan);
        assert_eq!(scan.issue, vec![0, 2, 0]);
    }

    #[test]
    fn empty_stream() {
        let g = DepGraph::new();
        let r = sim(&g, &m(2), &InstStream::default(), IssuePolicy::Strict);
        assert_eq!(r.completion, 0);
    }

    /// Regression (found in code review): a machine lacking a node's
    /// unit class must fail with a configuration error, not a bogus
    /// "simulator deadlocked" panic.
    #[test]
    #[should_panic(expected = "no functional unit")]
    fn incompatible_machine_rejected_up_front() {
        use asched_graph::{FuClass, NodeData};
        let mut g = DepGraph::new();
        let f = g.add_node(NodeData {
            label: "fadd".into(),
            exec_time: 1,
            class: FuClass::Float,
            block: BlockId(0),
            source_pos: 0,
        });
        let machine = MachineModel {
            units: vec![FuClass::Fixed],
            window: 4,
        };
        sim(
            &g,
            &machine,
            &InstStream::from_order(&[f]),
            IssuePolicy::Strict,
        );
    }

    #[test]
    #[should_panic(expected = "appears after its consumer")]
    fn malformed_stream_panics() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 1);
        let s = InstStream::from_order(&[b, a]);
        sim(&g, &m(2), &s, IssuePolicy::Strict);
    }

    #[test]
    fn completion_of_iter_tracks_prefix() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let s = InstStream::loop_iterations(&[a], 3);
        let r = sim(&g, &m(2), &s, IssuePolicy::Strict);
        assert_eq!(r.completion_of_iter(&s, 0), 1);
        assert_eq!(r.completion_of_iter(&s, 1), 2);
        assert_eq!(r.completion_of_iter(&s, 2), 3);
    }
}
