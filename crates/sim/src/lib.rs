//! Lookahead-window machine simulator.
//!
//! Implements the hardware model of Sarkar & Simons (SPAA 1996), Section
//! 2.3: *"Let W be the size of the lookahead window. At any given instant,
//! the window contains a sequence of W instructions that occur
//! contiguously in the program's dynamic instruction stream. The processor
//! hardware is capable of issuing and executing any of these W
//! instructions in the window that is ready for execution. The window
//! moves ahead only when the first instruction in the window has been
//! issued."*
//!
//! The simulator consumes a *dynamic instruction stream* — per-block
//! compiler-emitted orders concatenated along a trace, or a loop body
//! repeated for `n` iterations — and executes it cycle by cycle. Within
//! the window, ready instructions issue in stream order (the paper's
//! Ordering Constraint: the hardware never issues a later ready
//! instruction before an earlier ready one).
//!
//! This is the ground truth for every experiment: a compile-time schedule
//! is only as good as the cycle count this model assigns to the emitted
//! instruction order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod stats;
mod steady;
mod stream;
mod window;

pub use asched_graph::{SchedCtx, SchedOpts, SimScratch};
pub use branch::{expected_cycles, simulate_with_prediction};
pub use stats::{schedule_of, timeline, utilization, SimStats};
pub use steady::{
    loop_completion, steady_period, steady_period_rational, steady_period_with,
    trace_loop_completion, trace_steady_period_with,
};
pub use stream::{InstStream, StreamInst};
pub use window::{simulate, IssuePolicy, SimResult};
