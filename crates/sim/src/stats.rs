//! Execution statistics derived from a simulation.

use crate::stream::InstStream;
use crate::window::SimResult;
use asched_graph::{DepGraph, MachineModel, Schedule};

/// Summary statistics of a simulated stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimStats {
    /// Total cycles (makespan).
    pub cycles: u64,
    /// Busy unit-cycles (sum of execution times).
    pub busy_unit_cycles: u64,
    /// Fraction of unit-cycles doing work: `busy / (cycles * units)`.
    pub utilization: f64,
    /// Cycles during which work was pending but nothing issued.
    pub stall_cycles: u64,
    /// Dynamic instruction count.
    pub instructions: u64,
}

/// Compute utilization statistics for a finished simulation.
pub fn utilization(
    g: &DepGraph,
    machine: &MachineModel,
    stream: &InstStream,
    result: &SimResult,
) -> SimStats {
    let busy: u64 = stream
        .items()
        .iter()
        .map(|i| g.exec_time(i.node) as u64)
        .sum();
    let cycles = result.completion;
    let denom = cycles.saturating_mul(machine.num_units() as u64);
    SimStats {
        cycles,
        busy_unit_cycles: busy,
        utilization: if denom == 0 {
            0.0
        } else {
            busy as f64 / denom as f64
        },
        stall_cycles: result.stall_cycles,
        instructions: stream.len() as u64,
    }
}

/// Reconstruct the per-unit placement of a finished simulation as a
/// [`Schedule`]: instances in issue order grab the first compatible unit
/// free at their cycle, mirroring the simulator's own scan order. This
/// is the single source of truth for turning a [`SimResult`] back into a
/// schedule (used by [`timeline`] and by `asched-core`'s portfolio
/// reconstruction).
///
/// Invariant: the reconstruction must mirror the simulator's unit
/// arbitration exactly — within a cycle the simulator issues in window
/// order (ascending stream position) and each instance takes the first
/// free unit of its class, which is what sorting by `(issue, position)`
/// and scanning `units_for` reproduces. A change to the arbitration in
/// `window.rs` must be reflected here; the `expect` below fails loudly
/// if the two ever diverge.
pub fn schedule_of(
    g: &DepGraph,
    machine: &MachineModel,
    stream: &InstStream,
    result: &SimResult,
) -> Schedule {
    let mut sched = Schedule::new(g.len());
    let mut unit_free = vec![0u64; machine.num_units()];
    let mut order: Vec<usize> = (0..stream.len()).collect();
    order.sort_by_key(|&j| (result.issue[j], j));
    let mut assigned: Vec<bool> = vec![false; g.len()];
    for j in order {
        let inst = stream.items()[j];
        let t = result.issue[j];
        let u = machine
            .units_for(g.node(inst.node).class)
            .find(|&u| unit_free[u] <= t)
            .expect("simulation was feasible");
        let exec = g.exec_time(inst.node);
        unit_free[u] = t + exec as u64;
        // Only single-occurrence streams (iter 0) can be expressed as a
        // static Schedule; later iterations are skipped.
        if !assigned[inst.node.index()] {
            assigned[inst.node.index()] = true;
            sched.assign(inst.node, t, u, exec);
        }
    }
    sched
}

/// Render the dynamic execution as one text line per functional unit
/// (`.` = continuation of a multi-cycle instruction, space = idle), with
/// instruction labels from the graph. Instances from iteration `k > 0`
/// are suffixed with `'` marks cyclically to stay compact.
pub fn timeline(
    g: &DepGraph,
    machine: &MachineModel,
    stream: &InstStream,
    result: &SimResult,
) -> String {
    let t_max = result.completion as usize;
    let mut rows: Vec<Vec<String>> = vec![vec![" ".to_string(); t_max]; machine.num_units()];
    // Same reconstruction as schedule_of, but per dynamic instance (a
    // Schedule can hold each node once; the timeline shows every
    // iteration).
    let mut unit_free = vec![0u64; machine.num_units()];
    let mut order: Vec<usize> = (0..stream.len()).collect();
    order.sort_by_key(|&j| (result.issue[j], j));
    for j in order {
        let inst = stream.items()[j];
        let class = g.node(inst.node).class;
        let t = result.issue[j];
        let u = machine
            .units_for(class)
            .find(|&u| unit_free[u] <= t)
            .expect("simulation was feasible");
        let exec = g.exec_time(inst.node) as u64;
        unit_free[u] = t + exec;
        let tick = "'".repeat((inst.iter % 3) as usize);
        rows[u][t as usize] = format!("{}{}", g.node(inst.node).label, tick);
        for k in 1..exec {
            rows[u][(t + k) as usize] = ".".to_string();
        }
    }
    rows.iter()
        .map(|r| format!("|{}|", r.join("|")))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{simulate, IssuePolicy};
    use asched_graph::{BlockId, SchedCtx, SchedOpts};

    fn sim(g: &DepGraph, m: &MachineModel, s: &InstStream) -> SimResult {
        simulate(
            &mut SchedCtx::new(),
            g,
            m,
            s,
            IssuePolicy::Strict,
            &SchedOpts::default(),
        )
    }

    #[test]
    fn full_utilization_without_gaps() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let m = MachineModel::single_unit(2);
        let s = InstStream::from_order(&[a, b]);
        let r = sim(&g, &m, &s);
        let st = utilization(&g, &m, &s, &r);
        assert_eq!(st.cycles, 2);
        assert_eq!(st.busy_unit_cycles, 2);
        assert!((st.utilization - 1.0).abs() < 1e-9);
        assert_eq!(st.stall_cycles, 0);
        assert_eq!(st.instructions, 2);
    }

    #[test]
    fn stalls_reduce_utilization() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 3);
        let m = MachineModel::single_unit(1);
        let s = InstStream::from_order(&[a, b]);
        let r = sim(&g, &m, &s);
        let st = utilization(&g, &m, &s, &r);
        assert_eq!(st.cycles, 5);
        assert_eq!(st.stall_cycles, 3);
        assert!((st.utilization - 0.4).abs() < 1e-9);
    }

    #[test]
    fn schedule_of_reconstructs_valid_schedules() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 2);
        let m = MachineModel::single_unit(2);
        let s = InstStream::from_order(&[a, b]);
        let r = sim(&g, &m, &s);
        let sched = schedule_of(&g, &m, &s, &r);
        assert_eq!(sched.start(a), Some(0));
        assert_eq!(sched.start(b), Some(3));
        asched_graph::validate::validate_schedule(&g, &g.all_nodes(), &m, &sched, None).unwrap();
    }

    #[test]
    fn timeline_renders_gaps_and_iterations() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        g.add_edge(a, a, 1, 1, asched_graph::DepKind::Data);
        let m = MachineModel::single_unit(2);
        let s = InstStream::loop_iterations(&[a], 2);
        let r = sim(&g, &m, &s);
        let line = timeline(&g, &m, &s, &r);
        // a at 0, idle at 1, a' at 2.
        assert_eq!(line, "|a| |a'|");
    }

    #[test]
    fn empty_stream_zero_stats() {
        let g = DepGraph::new();
        let m = MachineModel::single_unit(1);
        let s = InstStream::default();
        let r = sim(&g, &m, &s);
        let st = utilization(&g, &m, &s, &r);
        assert_eq!(st.cycles, 0);
        assert_eq!(st.utilization, 0.0);
    }
}
