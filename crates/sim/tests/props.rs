//! Property tests for the lookahead-window simulator.

use asched_graph::{critical_path_length, BlockId, DepGraph, MachineModel, NodeId};
use asched_sim::{loop_completion, simulate, InstStream, IssuePolicy, SchedCtx, SchedOpts};
use proptest::prelude::*;

/// Fresh-context shorthand used throughout (determinism tests make their
/// own warm contexts explicitly).
fn sim(
    g: &DepGraph,
    m: &MachineModel,
    s: &InstStream,
    policy: IssuePolicy,
) -> asched_sim::SimResult {
    simulate(&mut SchedCtx::new(), g, m, s, policy, &SchedOpts::default())
}

/// Random unit-exec DAG plus a dependence-respecting emission order.
fn arb_workload() -> impl Strategy<Value = (DepGraph, Vec<NodeId>)> {
    (3usize..16, any::<u64>(), 0.1f64..0.6).prop_map(|(n, seed, density)| {
        let mut g = DepGraph::new();
        for i in 0..n {
            g.add_simple(format!("n{i}"), BlockId(0));
        }
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            for j in (i + 1)..n {
                if (next() % 1000) as f64 / 1000.0 < density {
                    g.add_dep(NodeId(i as u32), NodeId(j as u32), (next() % 4) as u32);
                }
            }
        }
        // Emission order = index order (respects all forward edges).
        let order: Vec<NodeId> = g.node_ids().collect();
        (g, order)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The simulator is deterministic and bounded: completion is at
    /// least the dependence critical path and the work bound, and at
    /// most the fully-serialized worst case.
    #[test]
    fn completion_bounds((g, order) in arb_workload(), w in 1usize..10) {
        let m = MachineModel::single_unit(w);
        let stream = InstStream::from_order(&order);
        let mut warm = SchedCtx::new();
        let r1 = simulate(&mut warm, &g, &m, &stream, IssuePolicy::Strict, &SchedOpts::default());
        let r2 = simulate(&mut warm, &g, &m, &stream, IssuePolicy::Strict, &SchedOpts::default());
        let fresh = sim(&g, &m, &stream, IssuePolicy::Strict);
        prop_assert_eq!(r1.completion, r2.completion, "determinism");
        prop_assert_eq!(r1.completion, fresh.completion, "warm ctx must match fresh");
        prop_assert_eq!(&r1.issue, &fresh.issue);
        prop_assert_eq!(&r1.finish, &fresh.finish);
        let cp = critical_path_length(&g, &g.all_nodes()).unwrap();
        prop_assert!(r1.completion >= cp.max(g.len() as u64));
        let worst: u64 = g.len() as u64 * (1 + g.max_latency() as u64);
        prop_assert!(r1.completion <= worst);
    }

    /// A larger window usually helps and never changes the bounds — but
    /// strict monotonicity is NOT a theorem (see
    /// `window_anomaly_regression` below for a concrete Graham-type
    /// anomaly where W=5 loses a cycle to W=4). Assert the sound
    /// envelope instead: both runs sit between the dependence/work lower
    /// bound and the fully-serialized worst case, and the wide-open
    /// window is never beaten by more than the anomaly slack.
    #[test]
    fn window_effect_is_bounded((g, order) in arb_workload(), w in 1usize..8) {
        let stream = InstStream::from_order(&order);
        let small = sim(&g, &MachineModel::single_unit(w), &stream, IssuePolicy::Strict);
        let big = sim(&g, &MachineModel::single_unit(w + 1), &stream, IssuePolicy::Strict);
        let cp = critical_path_length(&g, &g.all_nodes()).unwrap();
        let lower = cp.max(g.len() as u64);
        let worst: u64 = g.len() as u64 * (1 + g.max_latency() as u64);
        for r in [&small, &big] {
            prop_assert!(r.completion >= lower && r.completion <= worst);
        }
        // Anomalies are single-swap effects: allow one max-latency slack.
        prop_assert!(
            big.completion <= small.completion + 1 + g.max_latency() as u64,
            "W={} gave {}, W={} gave {}",
            w, small.completion, w + 1, big.completion
        );
    }

    /// An infinitely wide window on a single unit achieves exactly the
    /// greedy list schedule of the emission order.
    #[test]
    fn huge_window_equals_list_schedule((g, order) in arb_workload()) {
        let m = MachineModel::single_unit(1000);
        let stream = InstStream::from_order(&order);
        let mut ctx = SchedCtx::new();
        let r = simulate(&mut ctx, &g, &m, &stream, IssuePolicy::Strict, &SchedOpts::default());
        let sched =
            asched_rank::list_schedule(&mut ctx, &g, &g.all_nodes(), &m, &order, &SchedOpts::default());
        prop_assert_eq!(r.completion, sched.makespan());
    }

    /// Loop completion is superadditive-ish: n iterations take at least
    /// n times the per-iteration work, and completion is monotone in n.
    #[test]
    fn loop_completion_monotone((g, order) in arb_workload(), w in 1usize..6) {
        let m = MachineModel::single_unit(w);
        let mut prev = 0;
        for n in 1..=4u32 {
            let c = loop_completion(&mut SchedCtx::new(), &g, &m, &order, n);
            prop_assert!(c >= prev, "completion must be monotone in n");
            prop_assert!(c >= n as u64 * g.len() as u64, "work bound");
            prev = c;
        }
    }

    /// Scan policy never loses to Strict (it only adds issue
    /// opportunities) on a single unit they are identical.
    #[test]
    fn scan_equals_strict_on_single_unit((g, order) in arb_workload(), w in 1usize..8) {
        let m = MachineModel::single_unit(w);
        let stream = InstStream::from_order(&order);
        let strict = sim(&g, &m, &stream, IssuePolicy::Strict);
        let scan = sim(&g, &m, &stream, IssuePolicy::Scan);
        prop_assert_eq!(strict.completion, scan.completion);
        prop_assert_eq!(strict.issue, scan.issue);
    }
}

/// A 15-node, 0-3-latency instance (shrunk by proptest) where W=5
/// completes in 21 cycles but W=4 in 20: a Graham-type scheduling
/// anomaly — the wider window greedily issues an instruction whose
/// issue reshuffles later readiness for the worse. Window
/// monotonicity is NOT a theorem of the Section 2.3 model, which is
/// why the property test above only asserts bounds.
#[test]
fn window_anomaly_regression() {
    let mut g = DepGraph::new();
    for i in 0..15 {
        g.add_simple(format!("n{i}"), BlockId(0));
    }
    for (s, d, l) in [
        (0, 2, 1),
        (0, 4, 2),
        (0, 6, 2),
        (0, 7, 0),
        (0, 9, 0),
        (0, 10, 1),
        (0, 14, 3),
        (1, 2, 3),
        (1, 4, 3),
        (1, 5, 2),
        (1, 6, 1),
        (1, 11, 0),
        (1, 13, 3),
        (1, 14, 2),
        (2, 4, 1),
        (2, 8, 3),
        (2, 10, 3),
        (2, 12, 3),
        (2, 13, 0),
        (3, 8, 0),
        (3, 14, 2),
        (4, 5, 3),
        (4, 6, 0),
        (5, 10, 0),
        (5, 14, 1),
        (6, 7, 2),
        (6, 10, 1),
        (6, 12, 1),
        (6, 13, 1),
        (6, 14, 0),
        (7, 11, 2),
        (7, 12, 2),
        (8, 10, 0),
        (8, 11, 3),
        (8, 12, 1),
        (9, 11, 1),
        (9, 12, 3),
        (9, 13, 0),
        (9, 14, 2),
        (10, 12, 3),
        (10, 13, 2),
        (11, 13, 1),
        (11, 14, 2),
        (13, 14, 1),
        (0, 2, 1),
        (1, 2, 3),
        (0, 4, 2),
        (1, 4, 3),
        (2, 4, 1),
        (1, 5, 2),
        (4, 5, 3),
        (0, 6, 2),
        (1, 6, 1),
        (4, 6, 0),
        (0, 7, 0),
        (6, 7, 2),
        (2, 8, 3),
        (3, 8, 0),
        (0, 9, 0),
        (0, 10, 1),
        (2, 10, 3),
        (5, 10, 0),
        (6, 10, 1),
        (8, 10, 0),
        (1, 11, 0),
        (7, 11, 2),
        (8, 11, 3),
        (9, 11, 1),
        (2, 12, 3),
        (6, 12, 1),
        (7, 12, 2),
        (8, 12, 1),
        (9, 12, 3),
        (10, 12, 3),
        (1, 13, 3),
        (2, 13, 0),
        (6, 13, 1),
        (9, 13, 0),
        (10, 13, 2),
        (11, 13, 1),
        (0, 14, 3),
        (1, 14, 2),
        (3, 14, 2),
        (5, 14, 1),
        (6, 14, 0),
        (9, 14, 2),
        (11, 14, 2),
        (13, 14, 1),
    ] {
        g.add_dep(asched_graph::NodeId(s), asched_graph::NodeId(d), l);
    }
    let order: Vec<asched_graph::NodeId> = g.node_ids().collect();
    let stream = InstStream::from_order(&order);
    let w4 = sim(
        &g,
        &MachineModel::single_unit(4),
        &stream,
        IssuePolicy::Strict,
    );
    let w5 = sim(
        &g,
        &MachineModel::single_unit(5),
        &stream,
        IssuePolicy::Strict,
    );
    assert_eq!(w4.completion, 20);
    assert_eq!(
        w5.completion, 21,
        "the anomaly: a bigger window loses a cycle"
    );
}
