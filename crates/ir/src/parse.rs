//! Assembly-text parser.
//!
//! Grammar (one instruction per line, `#` comments):
//!
//! ```text
//! program ::= ("trace" | "loop") "{" block* "}"
//! block   ::= "block" LABEL "{" inst* "}"
//! inst    ::= OPCODE [operands] ["=" operands]
//! operand ::= REG | INT | MEM
//! MEM     ::= REGION "[" REG ["," INT] "]"
//! ```
//!
//! Operands left of `=` are definitions (for stores, the memory operand
//! goes on the left — it is written); operands on the right are uses.
//! Integer immediates are accepted and ignored for dependence purposes.
//!
//! ```
//! let src = r#"
//! loop {
//!   block CL18 {
//!     l4u  gr6, gr7 = x[gr7, 4]
//!     st4u gr5, y[gr5, 4] = gr0
//!     c4   cr1 = gr6, 0
//!     mul  gr0 = gr6, gr0
//!     bt   cr1
//!   }
//! }
//! "#;
//! let prog = asched_ir::parse_program(src).unwrap();
//! assert_eq!(prog.num_insts(), 5);
//! ```

use crate::inst::{Inst, MemRef, Opcode};
use crate::program::{BasicBlock, Program, ProgramKind};
use crate::reg::Reg;
use std::fmt;

/// A parse failure, with a 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        msg: msg.into(),
    })
}

/// Parse a program in the format described in the module docs.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut kind: Option<ProgramKind> = None;
    let mut blocks: Vec<BasicBlock> = Vec::new();
    let mut cur_block: Option<(String, Vec<Inst>)> = None;
    let mut depth = 0usize;

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut tokens: Vec<&str> = text.split_whitespace().collect();

        // Structural lines.
        if tokens[0] == "trace" || tokens[0] == "loop" {
            if kind.is_some() {
                return err(line, "duplicate program header");
            }
            kind = Some(if tokens[0] == "trace" {
                ProgramKind::Trace
            } else {
                ProgramKind::Loop
            });
            if tokens.last() != Some(&"{") {
                return err(line, "expected `{` after program kind");
            }
            depth = 1;
            continue;
        }
        if tokens[0] == "block" {
            if depth != 1 {
                return err(line, "`block` outside program braces");
            }
            if tokens.len() != 3 || tokens[2] != "{" {
                return err(line, "expected `block LABEL {`");
            }
            cur_block = Some((tokens[1].to_string(), Vec::new()));
            depth = 2;
            continue;
        }
        if tokens[0] == "}" {
            match depth {
                2 => {
                    let (label, insts) = cur_block.take().expect("depth 2 implies a block");
                    if insts
                        .iter()
                        .enumerate()
                        .any(|(i, inst)| inst.op.is_branch() && i + 1 != insts.len())
                    {
                        return err(line, format!("branch not last in block {label}"));
                    }
                    blocks.push(BasicBlock::new(label, insts));
                    depth = 1;
                }
                1 => depth = 0,
                _ => return err(line, "unmatched `}`"),
            }
            continue;
        }
        if depth != 2 {
            return err(line, "instruction outside a block");
        }

        // Instruction line: OPCODE [lhs] [= rhs].
        let opname = tokens.remove(0);
        let Some(op) = Opcode::from_name(opname) else {
            return err(line, format!("unknown opcode `{opname}`"));
        };
        let rest = tokens.join(" ");
        // `a, b = c, d`: defs on the left, uses on the right. With no
        // `=` every operand is a use (e.g. `bt cr1`).
        let (lhs_str, rhs_str) = match rest.split_once('=') {
            Some((l, r)) => (l.trim(), r.trim()),
            None => ("", rest.trim()),
        };
        let lhs = parse_operands(lhs_str, line)?;
        let rhs = parse_operands(rhs_str, line)?;

        let mut defs: Vec<Reg> = Vec::new();
        let mut uses: Vec<Reg> = Vec::new();
        let mut mem: Option<MemRef> = None;
        for o in lhs {
            match o {
                Operand::Reg(r) => defs.push(r),
                Operand::Mem(m) => {
                    if !op.is_store() {
                        return err(line, "memory operand on the left of a non-store");
                    }
                    if mem.replace(m).is_some() {
                        return err(line, "multiple memory operands");
                    }
                }
                Operand::Imm(_) => return err(line, "immediate cannot be defined"),
            }
        }
        for o in rhs {
            match o {
                Operand::Reg(r) => uses.push(r),
                Operand::Mem(m) => {
                    if !op.is_load() {
                        return err(line, "memory operand on the right of a non-load");
                    }

                    if mem.replace(m).is_some() {
                        return err(line, "multiple memory operands");
                    }
                }
                Operand::Imm(_) => {} // immediates carry no dependences
            }
        }
        if (op.is_load() || op.is_store()) && mem.is_none() {
            return err(line, format!("`{op}` requires a memory operand"));
        }
        if op.is_update() {
            let base = mem.as_ref().unwrap().base;
            if !defs.contains(&base) {
                return err(
                    line,
                    format!("update-form `{op}` must list base {base} among defs"),
                );
            }
        }
        cur_block
            .as_mut()
            .expect("depth 2 implies a block")
            .1
            .push(Inst {
                op,
                defs,
                uses,
                mem,
            });
    }

    if depth != 0 {
        return err(src.lines().count(), "unexpected end of input (missing `}`)");
    }
    let Some(kind) = kind else {
        return err(1, "missing `trace {` or `loop {` header");
    };
    Ok(Program { blocks, kind })
}

enum Operand {
    Reg(Reg),
    #[allow(dead_code)] // the value itself carries no dependence
    Imm(i64),
    Mem(MemRef),
}

fn parse_operands(s: &str, line: usize) -> Result<Vec<Operand>, ParseError> {
    let mut out = Vec::new();
    if s.is_empty() {
        return Ok(out);
    }
    // Split on commas that are not inside brackets.
    let mut depth = 0;
    let mut cur = String::new();
    let mut parts: Vec<String> = Vec::new();
    for c in s.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                parts.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_string());
    }

    for p in parts {
        if p.is_empty() {
            return err(line, "empty operand");
        }
        if let Some(open) = p.find('[') {
            let close = match p.rfind(']') {
                Some(c) if c > open => c,
                _ => return err(line, format!("malformed memory operand `{p}`")),
            };
            let region = p[..open].trim().to_string();
            if region.is_empty() {
                return err(line, "memory operand missing region name");
            }
            let inner = &p[open + 1..close];
            let mut it = inner.split(',').map(str::trim);
            let base_str = it.next().unwrap_or("");
            let base: Reg = match base_str.parse() {
                Ok(r) => r,
                Err(_) => return err(line, format!("bad base register `{base_str}`")),
            };
            let offset = match it.next() {
                Some(o) => match o.parse::<i64>() {
                    Ok(v) => v,
                    Err(_) => return err(line, format!("bad offset `{o}`")),
                },
                None => 0,
            };
            if it.next().is_some() {
                return err(line, "too many fields in memory operand");
            }
            out.push(Operand::Mem(MemRef {
                region,
                base,
                offset,
            }));
        } else if let Ok(r) = p.parse::<Reg>() {
            out.push(Operand::Reg(r));
        } else if let Ok(v) = p.parse::<i64>() {
            out.push(Operand::Imm(v));
        } else {
            return err(line, format!("unrecognized operand `{p}`"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig3() {
        let prog = parse_program(
            r#"
            # the partial-products loop of Figure 3
            loop {
              block CL18 {
                l4u  gr6, gr7 = x[gr7, 4]
                st4u gr5, y[gr5, 4] = gr0
                c4   cr1 = gr6, 0
                mul  gr0 = gr6, gr0
                bt   cr1
              }
            }
            "#,
        )
        .unwrap();
        assert_eq!(prog.kind, ProgramKind::Loop);
        assert_eq!(prog.blocks.len(), 1);
        assert_eq!(prog.blocks[0].label, "CL18");
        assert_eq!(prog.num_insts(), 5);
        let l = &prog.blocks[0].insts[0];
        assert_eq!(l.op, Opcode::LoadU);
        assert_eq!(l.defs, vec![Reg::Gpr(6), Reg::Gpr(7)]);
        assert_eq!(l.mem.as_ref().unwrap().region, "x");
        assert_eq!(l.mem.as_ref().unwrap().offset, 4);
        let s = &prog.blocks[0].insts[1];
        assert_eq!(s.op, Opcode::StoreU);
        assert_eq!(s.uses, vec![Reg::Gpr(0)]);
    }

    #[test]
    fn parses_multiple_blocks() {
        let prog = parse_program(
            "trace {\n block A {\n li gr1 = 5\n }\n block B {\n add gr2 = gr1, gr1\n }\n}",
        )
        .unwrap();
        assert_eq!(prog.blocks.len(), 2);
        assert_eq!(prog.kind, ProgramKind::Trace);
    }

    #[test]
    fn error_cases_report_lines() {
        let cases = [
            ("trace {\n block A {\n xyz gr1\n }\n}", 3, "unknown opcode"),
            (
                "trace {\n block A {\n li gr99 = 1\n }\n}",
                3,
                "unrecognized operand",
            ),
            ("block A {\n }\n", 1, "outside program braces"),
            (
                "trace {\n block A {\n l4 gr1 = gr2\n }\n}",
                3,
                "requires a memory",
            ),
            (
                "trace {\n block A {\n l4u gr1 = a[gr2]\n }\n}",
                3,
                "must list base",
            ),
            (
                "trace {\n block A {\n st4 gr1 = a[gr2]\n }\n}",
                3,
                "right of a non-load",
            ),
            (
                "trace {\n block A {\n bt cr1\n li gr1 = 0\n }\n}",
                5,
                "branch not last",
            ),
        ];
        for (src, line, needle) in cases {
            let e = parse_program(src).unwrap_err();
            assert_eq!(e.line, line, "line for {needle}: {e}");
            assert!(e.msg.contains(needle), "{e} should mention {needle}");
        }
    }

    #[test]
    fn reversed_brackets_rejected_cleanly() {
        let e = parse_program("trace {\n block A {\n l4 gr1 = a]x[gr2\n }\n}").unwrap_err();
        assert!(e.msg.contains("malformed memory operand"));
        assert_eq!(e.line, 3);
    }

    #[test]
    fn missing_close_brace() {
        let e = parse_program("trace {\n block A {\n li gr1 = 0\n }\n").unwrap_err();
        assert!(e.msg.contains("missing `}`"));
    }

    #[test]
    fn immediates_ignored() {
        let prog = parse_program("trace {\n block A {\n add gr1 = gr2, 42\n }\n}").unwrap();
        let i = &prog.blocks[0].insts[0];
        assert_eq!(i.uses, vec![Reg::Gpr(2)]);
    }
}
