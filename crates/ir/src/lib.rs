//! A miniature RISC intermediate representation.
//!
//! The paper's algorithms consume dependence graphs, but the paper's own
//! running example (Figure 3) is real RS/6000 code. This crate provides a
//! small RS/6000-flavoured IR — registers, update-form loads/stores,
//! compares, condition-register branches — together with:
//!
//! * a textual assembly format with a parser and printer,
//! * a configurable [`LatencyModel`] (including the paper's restricted
//!   0/1 model and a Figure-3-compatible model with a 4-cycle multiply),
//! * **dependence analysis** ([`build_trace_graph`], [`build_loop_graph`])
//!   producing the `<latency, distance>`-labelled [`asched_graph::DepGraph`]
//!   the schedulers consume: register flow/anti/output dependences,
//!   conservative memory disambiguation by region and base register, and
//!   control dependences onto the block-terminating branch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod cfg;
mod deps;
mod inst;
mod latency;
mod parse;
mod print;
mod program;
mod reg;
pub mod transform;

pub use builder::ProgramBuilder;
pub use cfg::{Cfg, CfgEdge, CfgError};
pub use deps::{build_loop_graph, build_trace_graph};
pub use inst::{Inst, MemRef, Opcode};
pub use latency::LatencyModel;
pub use parse::{parse_program, ParseError};
pub use print::{format_program, format_scheduled_block, source_location};
pub use program::{BasicBlock, Program, ProgramKind};
pub use reg::Reg;
