//! Instructions and opcodes.

use crate::reg::Reg;
use asched_graph::FuClass;
use std::fmt;

/// Opcodes of the mini ISA (RS/6000-flavoured, lowercased mnemonics).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Opcode {
    /// Load immediate into a register.
    Li,
    /// Register move.
    Mr,
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Shift left.
    Shl,
    /// Integer multiply (the paper's `M`).
    Mul,
    /// Integer divide.
    Div,
    /// Load word (`L4`).
    Load,
    /// Load word with base-register update (`L4U`).
    LoadU,
    /// Store word (`ST4`).
    Store,
    /// Store word with base-register update (`ST4U`).
    StoreU,
    /// Compare, writing a condition-register field (`C4`).
    Cmp,
    /// Floating add.
    Fadd,
    /// Floating multiply.
    Fmul,
    /// Floating divide.
    Fdiv,
    /// Conditional branch on a condition register (`BT`).
    Bc,
    /// Unconditional branch (`B`).
    B,
    /// No-operation.
    Nop,
}

impl Opcode {
    /// The assembly mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Li => "li",
            Opcode::Mr => "mr",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Shl => "shl",
            Opcode::Mul => "mul",
            Opcode::Div => "div",
            Opcode::Load => "l4",
            Opcode::LoadU => "l4u",
            Opcode::Store => "st4",
            Opcode::StoreU => "st4u",
            Opcode::Cmp => "c4",
            Opcode::Fadd => "fadd",
            Opcode::Fmul => "fmul",
            Opcode::Fdiv => "fdiv",
            Opcode::Bc => "bt",
            Opcode::B => "b",
            Opcode::Nop => "nop",
        }
    }

    /// Parse a mnemonic.
    pub fn from_name(s: &str) -> Option<Opcode> {
        Some(match s {
            "li" => Opcode::Li,
            "mr" => Opcode::Mr,
            "add" => Opcode::Add,
            "sub" => Opcode::Sub,
            "shl" => Opcode::Shl,
            "mul" | "m" => Opcode::Mul,
            "div" => Opcode::Div,
            "l4" => Opcode::Load,
            "l4u" => Opcode::LoadU,
            "st4" => Opcode::Store,
            "st4u" => Opcode::StoreU,
            "c4" => Opcode::Cmp,
            "fadd" => Opcode::Fadd,
            "fmul" => Opcode::Fmul,
            "fdiv" => Opcode::Fdiv,
            "bt" | "bf" => Opcode::Bc,
            "b" => Opcode::B,
            "nop" => Opcode::Nop,
            _ => return None,
        })
    }

    /// Functional-unit class on an assigned-unit machine.
    pub fn class(self) -> FuClass {
        match self {
            Opcode::Load | Opcode::LoadU | Opcode::Store | Opcode::StoreU => FuClass::Memory,
            Opcode::Fadd | Opcode::Fmul | Opcode::Fdiv => FuClass::Float,
            Opcode::Bc | Opcode::B => FuClass::Branch,
            _ => FuClass::Fixed,
        }
    }

    /// True for branch instructions (must terminate a basic block).
    pub fn is_branch(self) -> bool {
        matches!(self, Opcode::Bc | Opcode::B)
    }

    /// True for memory reads.
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Load | Opcode::LoadU)
    }

    /// True for memory writes.
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Store | Opcode::StoreU)
    }

    /// True for update-form memory ops (the base register is also
    /// defined, holding the incremented address).
    pub fn is_update(self) -> bool {
        matches!(self, Opcode::LoadU | Opcode::StoreU)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A symbolic memory reference: `region[base]` or `region[base, offset]`.
///
/// `region` is the name of the array/variable the access belongs to (the
/// compiler knows this from the source); the disambiguator uses it
/// together with the base register and offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MemRef {
    /// Symbolic region (array) name.
    pub region: String,
    /// Base address register.
    pub base: Reg,
    /// Constant byte offset.
    pub offset: i64,
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset == 0 {
            write!(f, "{}[{}]", self.region, self.base)
        } else {
            write!(f, "{}[{}, {}]", self.region, self.base, self.offset)
        }
    }
}

/// One instruction: an opcode, explicit register defs and uses, and an
/// optional memory reference (read for loads, written for stores).
///
/// The base register of a memory reference is always implicitly a use;
/// update-form ops list it in `defs` too.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Inst {
    /// Opcode.
    pub op: Opcode,
    /// Registers written.
    pub defs: Vec<Reg>,
    /// Registers read (excluding the memory base, which is implicit).
    pub uses: Vec<Reg>,
    /// Memory reference, if the opcode accesses memory.
    pub mem: Option<MemRef>,
}

impl Inst {
    /// All registers this instruction reads, including the memory base.
    pub fn all_uses(&self) -> Vec<Reg> {
        let mut v = self.uses.clone();
        if let Some(m) = &self.mem {
            if !v.contains(&m.base) {
                v.push(m.base);
            }
        }
        v
    }

    /// Short mnemonic label for dependence-graph nodes (e.g. `l4u`).
    pub fn label(&self) -> String {
        self.op.name().to_string()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        let mut lhs: Vec<String> = self.defs.iter().map(|r| r.to_string()).collect();
        if self.op.is_store() {
            if let Some(m) = &self.mem {
                lhs.push(m.to_string());
            }
        }
        let mut rhs: Vec<String> = self.uses.iter().map(|r| r.to_string()).collect();
        if self.op.is_load() {
            if let Some(m) = &self.mem {
                rhs.push(m.to_string());
            }
        }
        if !lhs.is_empty() {
            write!(f, " {}", lhs.join(", "))?;
            if rhs.is_empty() {
                // Defs-only instructions (e.g. `li`) print a canonical
                // zero immediate so the text round-trips through the
                // parser with the defs on the correct side.
                write!(f, " = 0")?;
            } else {
                write!(f, " = {}", rhs.join(", "))?;
            }
        } else if !rhs.is_empty() {
            // Uses-only instructions (e.g. `bt cr1`) need no `=`.
            write!(f, " {}", rhs.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_name_roundtrip() {
        for op in [
            Opcode::Li,
            Opcode::Add,
            Opcode::Mul,
            Opcode::LoadU,
            Opcode::StoreU,
            Opcode::Cmp,
            Opcode::Bc,
            Opcode::Fdiv,
        ] {
            assert_eq!(Opcode::from_name(op.name()), Some(op));
        }
        assert_eq!(Opcode::from_name("m"), Some(Opcode::Mul)); // paper alias
        assert_eq!(Opcode::from_name("xyz"), None);
    }

    #[test]
    fn classes() {
        assert_eq!(Opcode::LoadU.class(), FuClass::Memory);
        assert_eq!(Opcode::Mul.class(), FuClass::Fixed);
        assert_eq!(Opcode::Fmul.class(), FuClass::Float);
        assert_eq!(Opcode::Bc.class(), FuClass::Branch);
    }

    #[test]
    fn predicates() {
        assert!(Opcode::Bc.is_branch());
        assert!(Opcode::LoadU.is_load() && Opcode::LoadU.is_update());
        assert!(Opcode::Store.is_store() && !Opcode::Store.is_update());
    }

    #[test]
    fn all_uses_includes_base_once() {
        let i = Inst {
            op: Opcode::StoreU,
            defs: vec![Reg::Gpr(5)],
            uses: vec![Reg::Gpr(0), Reg::Gpr(5)],
            mem: Some(MemRef {
                region: "y".into(),
                base: Reg::Gpr(5),
                offset: 4,
            }),
        };
        let uses = i.all_uses();
        assert_eq!(uses.iter().filter(|&&r| r == Reg::Gpr(5)).count(), 1);
        assert!(uses.contains(&Reg::Gpr(0)));
    }

    #[test]
    fn display_defs_only_and_uses_only() {
        let li = Inst {
            op: Opcode::Li,
            defs: vec![Reg::Gpr(1)],
            uses: vec![],
            mem: None,
        };
        assert_eq!(li.to_string(), "li gr1 = 0");
        let bt = Inst {
            op: Opcode::Bc,
            defs: vec![],
            uses: vec![Reg::Cr(1)],
            mem: None,
        };
        assert_eq!(bt.to_string(), "bt cr1");
    }

    #[test]
    fn display_load_and_store() {
        let l = Inst {
            op: Opcode::LoadU,
            defs: vec![Reg::Gpr(6), Reg::Gpr(7)],
            uses: vec![],
            mem: Some(MemRef {
                region: "x".into(),
                base: Reg::Gpr(7),
                offset: 4,
            }),
        };
        assert_eq!(l.to_string(), "l4u gr6, gr7 = x[gr7, 4]");
        let s = Inst {
            op: Opcode::StoreU,
            defs: vec![Reg::Gpr(5)],
            uses: vec![Reg::Gpr(0)],
            mem: Some(MemRef {
                region: "y".into(),
                base: Reg::Gpr(5),
                offset: 4,
            }),
        };
        assert_eq!(s.to_string(), "st4u gr5, y[gr5, 4] = gr0");
    }
}
