//! Registers.

use std::fmt;
use std::str::FromStr;

/// An architectural register: general-purpose (fixed-point),
/// floating-point, or a condition-register field — the three families of
/// the paper's RS/6000 example (`gr0`, `gr5`–`gr7`, `cr1`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Reg {
    /// General-purpose register `grN`.
    Gpr(u8),
    /// Floating-point register `frN`.
    Fpr(u8),
    /// Condition register field `crN`.
    Cr(u8),
}

impl Reg {
    /// A compact dense index (for register-indexed tables). Gprs occupy
    /// 0..32, Fprs 32..64, Crs 64..72.
    pub fn index(self) -> usize {
        match self {
            Reg::Gpr(n) => n as usize,
            Reg::Fpr(n) => 32 + n as usize,
            Reg::Cr(n) => 64 + n as usize,
        }
    }

    /// Number of distinct register indices.
    pub const NUM_INDICES: usize = 72;
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Gpr(n) => write!(f, "gr{n}"),
            Reg::Fpr(n) => write!(f, "fr{n}"),
            Reg::Cr(n) => write!(f, "cr{n}"),
        }
    }
}

/// Error parsing a register name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegParseError(pub String);

impl fmt::Display for RegParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register `{}`", self.0)
    }
}

impl std::error::Error for RegParseError {}

impl FromStr for Reg {
    type Err = RegParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || RegParseError(s.to_string());
        // strip_prefix is byte-boundary-safe for arbitrary (fuzzed) input.
        if let Some(num) = s.strip_prefix("gr") {
            let n: u8 = num.parse().map_err(|_| bad())?;
            return if n < 32 { Ok(Reg::Gpr(n)) } else { Err(bad()) };
        }
        if let Some(num) = s.strip_prefix("fr") {
            let n: u8 = num.parse().map_err(|_| bad())?;
            return if n < 32 { Ok(Reg::Fpr(n)) } else { Err(bad()) };
        }
        if let Some(num) = s.strip_prefix("cr") {
            let n: u8 = num.parse().map_err(|_| bad())?;
            return if n < 8 { Ok(Reg::Cr(n)) } else { Err(bad()) };
        }
        Err(bad())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip() {
        for r in [Reg::Gpr(0), Reg::Gpr(31), Reg::Fpr(5), Reg::Cr(1)] {
            let s = r.to_string();
            assert_eq!(s.parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn indices_disjoint() {
        let a = Reg::Gpr(31).index();
        let b = Reg::Fpr(0).index();
        let c = Reg::Cr(0).index();
        assert!(a < b && b < c);
        assert!(Reg::Cr(7).index() < Reg::NUM_INDICES);
    }

    #[test]
    fn bad_names_rejected() {
        for s in ["gr32", "cr8", "xr1", "gr", "g5", "fr-1", ""] {
            assert!(s.parse::<Reg>().is_err(), "{s} should not parse");
        }
    }
}
