//! Basic blocks and programs.

use crate::inst::Inst;

/// A basic block: a labelled single-entry single-exit instruction
/// sequence; at most one branch, which must be last.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BasicBlock {
    /// Block label (e.g. `CL18`).
    pub label: String,
    /// Instructions in source order.
    pub insts: Vec<Inst>,
}

impl BasicBlock {
    /// Create a block; panics if a branch appears before the last
    /// position (not a basic block then).
    pub fn new(label: impl Into<String>, insts: Vec<Inst>) -> Self {
        let bb = BasicBlock {
            label: label.into(),
            insts,
        };
        bb.check();
        bb
    }

    fn check(&self) {
        for (i, inst) in self.insts.iter().enumerate() {
            if inst.op.is_branch() {
                assert!(
                    i + 1 == self.insts.len(),
                    "branch must terminate block {}",
                    self.label
                );
            }
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the block is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// How the blocks of a [`Program`] relate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProgramKind {
    /// A trace: the blocks execute once, in order (paper Section 4).
    Trace,
    /// A loop: the block sequence repeats (paper Section 5); dependence
    /// analysis additionally computes loop-carried edges.
    Loop,
}

/// A program: a trace or loop of basic blocks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    /// Blocks in trace order.
    pub blocks: Vec<BasicBlock>,
    /// Trace or loop.
    pub kind: ProgramKind,
}

impl Program {
    /// A trace program.
    pub fn trace(blocks: Vec<BasicBlock>) -> Self {
        Program {
            blocks,
            kind: ProgramKind::Trace,
        }
    }

    /// A loop program.
    pub fn new_loop(blocks: Vec<BasicBlock>) -> Self {
        Program {
            blocks,
            kind: ProgramKind::Loop,
        }
    }

    /// Total instruction count.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    /// Iterate `(block_index, inst_index, inst)` in program order.
    pub fn iter_insts(&self) -> impl Iterator<Item = (usize, usize, &Inst)> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, b)| b.insts.iter().enumerate().map(move |(ii, i)| (bi, ii, i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Opcode;

    fn nop() -> Inst {
        Inst {
            op: Opcode::Nop,
            defs: vec![],
            uses: vec![],
            mem: None,
        }
    }

    fn branch() -> Inst {
        Inst {
            op: Opcode::B,
            defs: vec![],
            uses: vec![],
            mem: None,
        }
    }

    #[test]
    fn block_accepts_trailing_branch() {
        let b = BasicBlock::new("L", vec![nop(), branch()]);
        assert_eq!(b.len(), 2);
    }

    #[test]
    #[should_panic(expected = "branch must terminate")]
    fn block_rejects_interior_branch() {
        BasicBlock::new("L", vec![branch(), nop()]);
    }

    #[test]
    fn program_counts_and_iterates() {
        let p = Program::trace(vec![
            BasicBlock::new("A", vec![nop(), nop()]),
            BasicBlock::new("B", vec![nop()]),
        ]);
        assert_eq!(p.num_insts(), 3);
        let idx: Vec<(usize, usize)> = p.iter_insts().map(|(b, i, _)| (b, i)).collect();
        assert_eq!(idx, vec![(0, 0), (0, 1), (1, 0)]);
        assert_eq!(p.kind, ProgramKind::Trace);
    }
}
