//! Latency and execution-time models.

use crate::inst::Opcode;
use asched_graph::FuClass;

/// A machine timing model: result latency per opcode (cycles between the
/// producer completing and a consumer starting), execution time per
/// opcode (cycles the instruction occupies its unit), and whether
/// instructions carry assigned-unit classes.
///
/// The paper's optimality results assume the *restricted* model
/// ([`LatencyModel::restricted_01`]): 0/1 latencies, unit execution
/// times, one functional unit. [`LatencyModel::fig3`] matches the
/// Figure 3 example (load/compare latency 1, multiply latency 4);
/// [`LatencyModel::rs6000_like`] adds floats, divides and unit classes
/// for the Section 4.2 heuristic experiments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Latency of loaded values.
    pub load: u32,
    /// Latency of stored data becoming visible (store→load forwarding).
    pub store: u32,
    /// Latency of simple integer ALU results.
    pub int_alu: u32,
    /// Latency of integer multiply results.
    pub mul: u32,
    /// Latency of integer divide results.
    pub div: u32,
    /// Latency of compare results (condition register).
    pub cmp: u32,
    /// Latency of floating add results.
    pub fadd: u32,
    /// Latency of floating multiply results.
    pub fmul: u32,
    /// Latency of floating divide results.
    pub fdiv: u32,
    /// Latency of the base-register update of update-form memory ops.
    pub update: u32,
    /// Execution time of integer divide (non-pipelined divides occupy
    /// their unit for several cycles).
    pub exec_div: u32,
    /// Execution time of floating divide.
    pub exec_fdiv: u32,
    /// If true, instructions are tagged with their [`FuClass`] for
    /// assigned-unit machines; if false everything is `Any` (the
    /// single-unit analyses).
    pub assign_classes: bool,
}

impl LatencyModel {
    /// The paper's restricted model: 0/1 latencies (loads and compares
    /// have latency 1, everything else 0), unit execution times.
    pub fn restricted_01() -> Self {
        LatencyModel {
            load: 1,
            store: 0,
            int_alu: 0,
            mul: 1,
            div: 1,
            cmp: 1,
            fadd: 1,
            fmul: 1,
            fdiv: 1,
            update: 0,
            exec_div: 1,
            exec_fdiv: 1,
            assign_classes: false,
        }
    }

    /// The Figure 3 model: load and compare latency 1, multiply latency
    /// 4 ("these latencies do not correspond to any specific
    /// implementation of the RS/6000"). Single-unit, unit execution
    /// times.
    pub fn fig3() -> Self {
        LatencyModel {
            load: 1,
            store: 0,
            int_alu: 0,
            mul: 4,
            div: 19,
            cmp: 1,
            fadd: 2,
            fmul: 2,
            fdiv: 19,
            update: 1,
            exec_div: 1,
            exec_fdiv: 1,
            assign_classes: false,
        }
    }

    /// A deeper assigned-unit machine: Figure 3 latencies plus float
    /// timings, multi-cycle divides and unit classes.
    pub fn rs6000_like() -> Self {
        LatencyModel {
            exec_div: 4,
            exec_fdiv: 4,
            assign_classes: true,
            ..LatencyModel::fig3()
        }
    }

    /// Result latency of values produced by `op` (excluding the
    /// base-register update of update-form ops — see
    /// [`LatencyModel::update`]).
    pub fn latency(&self, op: Opcode) -> u32 {
        match op {
            Opcode::Load | Opcode::LoadU => self.load,
            Opcode::Store | Opcode::StoreU => self.store,
            Opcode::Li | Opcode::Mr | Opcode::Add | Opcode::Sub | Opcode::Shl => self.int_alu,
            Opcode::Mul => self.mul,
            Opcode::Div => self.div,
            Opcode::Cmp => self.cmp,
            Opcode::Fadd => self.fadd,
            Opcode::Fmul => self.fmul,
            Opcode::Fdiv => self.fdiv,
            Opcode::Bc | Opcode::B | Opcode::Nop => 0,
        }
    }

    /// Cycles `op` occupies its functional unit.
    pub fn exec_time(&self, op: Opcode) -> u32 {
        match op {
            Opcode::Div => self.exec_div,
            Opcode::Fdiv => self.exec_fdiv,
            _ => 1,
        }
    }

    /// The functional-unit class to tag instructions with.
    pub fn class(&self, op: Opcode) -> FuClass {
        if self.assign_classes {
            op.class()
        } else {
            FuClass::Any
        }
    }

    /// The largest latency this model can produce (used in bounds).
    pub fn max_latency(&self) -> u32 {
        [
            self.load,
            self.store,
            self.int_alu,
            self.mul,
            self.div,
            self.cmp,
            self.fadd,
            self.fmul,
            self.fdiv,
            self.update,
        ]
        .into_iter()
        .max()
        .unwrap()
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::restricted_01()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restricted_is_zero_one() {
        let m = LatencyModel::restricted_01();
        for op in [
            Opcode::Li,
            Opcode::Add,
            Opcode::Mul,
            Opcode::Load,
            Opcode::Cmp,
            Opcode::Fdiv,
            Opcode::Bc,
        ] {
            assert!(m.latency(op) <= 1, "{op} latency must be 0/1");
            assert_eq!(m.exec_time(op), 1, "{op} must be unit time");
        }
        assert_eq!(m.class(Opcode::Fadd), FuClass::Any);
    }

    #[test]
    fn fig3_latencies() {
        let m = LatencyModel::fig3();
        assert_eq!(m.latency(Opcode::LoadU), 1);
        assert_eq!(m.latency(Opcode::Cmp), 1);
        assert_eq!(m.latency(Opcode::Mul), 4);
        assert_eq!(m.update, 1);
        assert_eq!(m.max_latency(), 19);
    }

    #[test]
    fn rs6000_assigns_classes_and_slow_div() {
        let m = LatencyModel::rs6000_like();
        assert_eq!(m.class(Opcode::Fadd), FuClass::Float);
        assert_eq!(m.exec_time(Opcode::Div), 4);
        assert_eq!(m.exec_time(Opcode::Add), 1);
    }
}
