//! Control-flow graphs and trace selection.
//!
//! The paper schedules *traces* — simple paths through the control-flow
//! graph — but says nothing about where they come from; its Related Work
//! points at Fisher's trace scheduling, which picks them by execution
//! frequency. This module provides the substrate: a profile-weighted CFG
//! over [`crate::BasicBlock`]s and the classic mutually-most-likely trace
//! selection, producing the trace [`Program`]s the anticipatory scheduler
//! consumes.

use crate::program::{BasicBlock, Program};
use std::fmt;

/// A profile-weighted control-flow edge.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CfgEdge {
    /// Source block index.
    pub from: usize,
    /// Destination block index.
    pub to: usize,
    /// Execution count (profile weight).
    pub count: u64,
}

/// A control-flow graph: basic blocks plus weighted edges.
#[derive(Clone, Debug, Default)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    edges: Vec<CfgEdge>,
    entry: usize,
}

/// Errors constructing a CFG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CfgError {
    /// An edge referenced a block index that does not exist.
    BadBlockIndex(usize),
    /// The entry index is out of range.
    BadEntry(usize),
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::BadBlockIndex(i) => write!(f, "edge references missing block {i}"),
            CfgError::BadEntry(i) => write!(f, "entry block {i} out of range"),
        }
    }
}

impl std::error::Error for CfgError {}

impl Cfg {
    /// Build a CFG; `entry` is the function entry block.
    pub fn new(
        blocks: Vec<BasicBlock>,
        edges: Vec<CfgEdge>,
        entry: usize,
    ) -> Result<Self, CfgError> {
        if entry >= blocks.len() {
            return Err(CfgError::BadEntry(entry));
        }
        for e in &edges {
            if e.from >= blocks.len() {
                return Err(CfgError::BadBlockIndex(e.from));
            }
            if e.to >= blocks.len() {
                return Err(CfgError::BadBlockIndex(e.to));
            }
        }
        Ok(Cfg {
            blocks,
            edges,
            entry,
        })
    }

    /// The blocks.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The edges.
    pub fn edges(&self) -> &[CfgEdge] {
        &self.edges
    }

    /// The entry block index.
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// Execution weight of a block: total incoming count, with the entry
    /// block getting one extra (the function call itself).
    pub fn block_weight(&self, b: usize) -> u64 {
        let incoming: u64 = self
            .edges
            .iter()
            .filter(|e| e.to == b)
            .map(|e| e.count)
            .sum();
        incoming + u64::from(b == self.entry)
    }

    /// The hottest outgoing edge of `b`, if any.
    fn best_succ(&self, b: usize) -> Option<CfgEdge> {
        self.edges
            .iter()
            .filter(|e| e.from == b)
            .max_by_key(|e| (e.count, usize::MAX - e.to))
            .copied()
    }

    /// The hottest incoming edge of `b`, if any.
    fn best_pred(&self, b: usize) -> Option<CfgEdge> {
        self.edges
            .iter()
            .filter(|e| e.to == b)
            .max_by_key(|e| (e.count, usize::MAX - e.from))
            .copied()
    }

    /// Fisher-style trace selection with the mutually-most-likely rule:
    /// repeatedly seed a trace at the hottest unvisited block, grow it
    /// forward while the hottest successor's hottest predecessor is the
    /// trace tail (and the successor is unvisited), then grow it
    /// backward symmetrically. Returns traces as lists of block indices,
    /// hottest first; every block appears in exactly one trace.
    pub fn select_traces(&self) -> Vec<Vec<usize>> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut traces = Vec::new();
        loop {
            // Hottest unvisited seed (ties: lowest index).
            let seed = (0..n)
                .filter(|&b| !visited[b])
                .max_by_key(|&b| (self.block_weight(b), usize::MAX - b));
            let Some(seed) = seed else { break };
            let mut trace = vec![seed];
            visited[seed] = true;
            // Grow forward.
            let mut tail = seed;
            while let Some(e) = self.best_succ(tail) {
                if visited[e.to] || e.count == 0 {
                    break;
                }
                match self.best_pred(e.to) {
                    Some(p) if p.from == tail => {}
                    _ => break, // not mutually most likely
                }
                trace.push(e.to);
                visited[e.to] = true;
                tail = e.to;
            }
            // Grow backward.
            let mut head = seed;
            while let Some(e) = self.best_pred(head) {
                if visited[e.from] || e.count == 0 {
                    break;
                }
                match self.best_succ(e.from) {
                    Some(s) if s.to == head => {}
                    _ => break,
                }
                trace.insert(0, e.from);
                visited[e.from] = true;
                head = e.from;
            }
            traces.push(trace);
        }
        traces
    }

    /// Materialize a trace as a [`Program`] the scheduler consumes.
    pub fn trace_program(&self, trace: &[usize]) -> Program {
        Program::trace(trace.iter().map(|&b| self.blocks[b].clone()).collect())
    }

    /// Per-boundary prediction accuracy along a trace: for each
    /// consecutive pair `(a, b)` the fraction of `a`'s outgoing profile
    /// weight that actually flows to `b` — the probability that hardware
    /// branch prediction keeps the lookahead window on the trace at that
    /// seam (boundaries with no outgoing weight count as always-correct
    /// fall-through).
    pub fn trace_accuracies(&self, trace: &[usize]) -> Vec<f64> {
        trace
            .windows(2)
            .map(|pair| {
                let total: u64 = self
                    .edges
                    .iter()
                    .filter(|e| e.from == pair[0])
                    .map(|e| e.count)
                    .sum();
                if total == 0 {
                    return 1.0;
                }
                let on_trace: u64 = self
                    .edges
                    .iter()
                    .filter(|e| e.from == pair[0] && e.to == pair[1])
                    .map(|e| e.count)
                    .sum();
                on_trace as f64 / total as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Opcode};
    use crate::reg::Reg;

    fn block(label: &str) -> BasicBlock {
        BasicBlock::new(
            label,
            vec![Inst {
                op: Opcode::Add,
                defs: vec![Reg::Gpr(1)],
                uses: vec![Reg::Gpr(1), Reg::Gpr(2)],
                mem: None,
            }],
        )
    }

    /// A diamond with a hot left arm:
    ///
    /// ```text
    ///        entry
    ///       90/  \10
    ///       hot  cold
    ///       90\  /10
    ///        join
    /// ```
    fn diamond() -> Cfg {
        Cfg::new(
            vec![block("entry"), block("hot"), block("cold"), block("join")],
            vec![
                CfgEdge {
                    from: 0,
                    to: 1,
                    count: 90,
                },
                CfgEdge {
                    from: 0,
                    to: 2,
                    count: 10,
                },
                CfgEdge {
                    from: 1,
                    to: 3,
                    count: 90,
                },
                CfgEdge {
                    from: 2,
                    to: 3,
                    count: 10,
                },
            ],
            0,
        )
        .unwrap()
    }

    #[test]
    fn hot_path_becomes_the_main_trace() {
        let cfg = diamond();
        let traces = cfg.select_traces();
        assert_eq!(traces[0], vec![0, 1, 3], "entry-hot-join is the main trace");
        assert_eq!(traces[1], vec![2], "the cold arm is its own trace");
        assert_eq!(traces.len(), 2);
    }

    #[test]
    fn every_block_in_exactly_one_trace() {
        let cfg = diamond();
        let traces = cfg.select_traces();
        let mut seen = vec![0usize; cfg.blocks().len()];
        for t in &traces {
            for &b in t {
                seen[b] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn mutual_most_likely_stops_at_merge_points() {
        // join's hottest predecessor is hot (90), so a trace seeded at
        // cold must NOT grow into join.
        let cfg = diamond();
        let traces = cfg.select_traces();
        let cold_trace = traces.iter().find(|t| t.contains(&2)).unwrap();
        assert_eq!(cold_trace.len(), 1);
    }

    #[test]
    fn loop_backedge_does_not_extend_traces() {
        // entry -> body -> body (backedge) -> exit: the backedge target
        // is already in the trace (visited), so growth stops.
        let cfg = Cfg::new(
            vec![block("entry"), block("body"), block("exit")],
            vec![
                CfgEdge {
                    from: 0,
                    to: 1,
                    count: 1,
                },
                CfgEdge {
                    from: 1,
                    to: 1,
                    count: 99,
                },
                CfgEdge {
                    from: 1,
                    to: 2,
                    count: 1,
                },
            ],
            0,
        )
        .unwrap();
        let traces = cfg.select_traces();
        // body is hottest (weight 100): seeded first; the self backedge
        // cannot extend it.
        assert_eq!(traces[0][0], 1);
        assert!(traces.iter().all(|t| t.len() <= 2));
    }

    #[test]
    fn trace_program_materializes_blocks_in_order() {
        let cfg = diamond();
        let prog = cfg.trace_program(&[0, 1, 3]);
        assert_eq!(prog.blocks.len(), 3);
        assert_eq!(prog.blocks[0].label, "entry");
        assert_eq!(prog.blocks[1].label, "hot");
        assert_eq!(prog.blocks[2].label, "join");
    }

    #[test]
    fn trace_accuracies_follow_profile() {
        let cfg = diamond();
        let acc = cfg.trace_accuracies(&[0, 1, 3]);
        assert_eq!(acc.len(), 2);
        assert!((acc[0] - 0.9).abs() < 1e-9, "entry->hot carries 90%");
        assert!((acc[1] - 1.0).abs() < 1e-9, "hot->join is unconditional");
        let cold = cfg.trace_accuracies(&[0, 2, 3]);
        assert!((cold[0] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn bad_indices_rejected() {
        assert!(matches!(
            Cfg::new(
                vec![block("a")],
                vec![CfgEdge {
                    from: 0,
                    to: 5,
                    count: 1
                }],
                0
            ),
            Err(CfgError::BadBlockIndex(5))
        ));
        assert!(matches!(
            Cfg::new(vec![block("a")], vec![], 3),
            Err(CfgError::BadEntry(3))
        ));
    }

    #[test]
    fn weights_count_incoming_plus_entry() {
        let cfg = diamond();
        assert_eq!(cfg.block_weight(0), 1);
        assert_eq!(cfg.block_weight(1), 90);
        assert_eq!(cfg.block_weight(2), 10);
        assert_eq!(cfg.block_weight(3), 100);
    }
}
