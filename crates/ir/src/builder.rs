//! Programmatic program construction (used by the workload generators).

use crate::inst::{Inst, MemRef, Opcode};
use crate::program::{BasicBlock, Program, ProgramKind};
use crate::reg::Reg;

/// A fluent builder for [`Program`]s.
///
/// ```
/// use asched_ir::{ProgramBuilder, Reg};
/// let prog = ProgramBuilder::new_loop()
///     .block("L")
///     .load_update(Reg::Gpr(2), "x", Reg::Gpr(1), 4)
///     .mul(Reg::Gpr(3), Reg::Gpr(2), Reg::Gpr(3))
///     .store_update("y", Reg::Gpr(4), 4, Reg::Gpr(3))
///     .branch_on(Reg::Cr(0))
///     .finish();
/// assert_eq!(prog.num_insts(), 4);
/// ```
pub struct ProgramBuilder {
    kind: ProgramKind,
    blocks: Vec<BasicBlock>,
    cur: Option<(String, Vec<Inst>)>,
}

impl ProgramBuilder {
    /// Start a trace program.
    pub fn new_trace() -> Self {
        ProgramBuilder {
            kind: ProgramKind::Trace,
            blocks: Vec::new(),
            cur: None,
        }
    }

    /// Start a loop program.
    pub fn new_loop() -> Self {
        ProgramBuilder {
            kind: ProgramKind::Loop,
            blocks: Vec::new(),
            cur: None,
        }
    }

    fn seal(&mut self) {
        if let Some((label, insts)) = self.cur.take() {
            self.blocks.push(BasicBlock::new(label, insts));
        }
    }

    /// Open a new basic block.
    pub fn block(mut self, label: impl Into<String>) -> Self {
        self.seal();
        self.cur = Some((label.into(), Vec::new()));
        self
    }

    /// Push a raw instruction into the current block.
    pub fn push(mut self, inst: Inst) -> Self {
        self.cur
            .as_mut()
            .expect("open a block before adding instructions")
            .1
            .push(inst);
        self
    }

    /// `li d = imm`.
    pub fn li(self, d: Reg) -> Self {
        self.push(Inst {
            op: Opcode::Li,
            defs: vec![d],
            uses: vec![],
            mem: None,
        })
    }

    /// Three-register integer op.
    fn rrr(self, op: Opcode, d: Reg, a: Reg, b: Reg) -> Self {
        self.push(Inst {
            op,
            defs: vec![d],
            uses: vec![a, b],
            mem: None,
        })
    }

    /// `add d = a, b`.
    pub fn add(self, d: Reg, a: Reg, b: Reg) -> Self {
        self.rrr(Opcode::Add, d, a, b)
    }

    /// `sub d = a, b`.
    pub fn sub(self, d: Reg, a: Reg, b: Reg) -> Self {
        self.rrr(Opcode::Sub, d, a, b)
    }

    /// `mul d = a, b`.
    pub fn mul(self, d: Reg, a: Reg, b: Reg) -> Self {
        self.rrr(Opcode::Mul, d, a, b)
    }

    /// `div d = a, b`.
    pub fn div(self, d: Reg, a: Reg, b: Reg) -> Self {
        self.rrr(Opcode::Div, d, a, b)
    }

    /// `fadd d = a, b`.
    pub fn fadd(self, d: Reg, a: Reg, b: Reg) -> Self {
        self.rrr(Opcode::Fadd, d, a, b)
    }

    /// `fmul d = a, b`.
    pub fn fmul(self, d: Reg, a: Reg, b: Reg) -> Self {
        self.rrr(Opcode::Fmul, d, a, b)
    }

    /// `l4 d = region[base, offset]`.
    pub fn load(self, d: Reg, region: &str, base: Reg, offset: i64) -> Self {
        self.push(Inst {
            op: Opcode::Load,
            defs: vec![d],
            uses: vec![],
            mem: Some(MemRef {
                region: region.into(),
                base,
                offset,
            }),
        })
    }

    /// `l4u d, base = region[base, stride]` (base updated).
    pub fn load_update(self, d: Reg, region: &str, base: Reg, stride: i64) -> Self {
        self.push(Inst {
            op: Opcode::LoadU,
            defs: vec![d, base],
            uses: vec![],
            mem: Some(MemRef {
                region: region.into(),
                base,
                offset: stride,
            }),
        })
    }

    /// `st4 region[base, offset] = v`.
    pub fn store(self, region: &str, base: Reg, offset: i64, v: Reg) -> Self {
        self.push(Inst {
            op: Opcode::Store,
            defs: vec![],
            uses: vec![v],
            mem: Some(MemRef {
                region: region.into(),
                base,
                offset,
            }),
        })
    }

    /// `st4u base, region[base, stride] = v` (base updated).
    pub fn store_update(self, region: &str, base: Reg, stride: i64, v: Reg) -> Self {
        self.push(Inst {
            op: Opcode::StoreU,
            defs: vec![base],
            uses: vec![v],
            mem: Some(MemRef {
                region: region.into(),
                base,
                offset: stride,
            }),
        })
    }

    /// `c4 cr = a` (compare against an implicit immediate).
    pub fn cmp(self, cr: Reg, a: Reg) -> Self {
        self.push(Inst {
            op: Opcode::Cmp,
            defs: vec![cr],
            uses: vec![a],
            mem: None,
        })
    }

    /// `bt cr`: conditional branch terminating the block.
    pub fn branch_on(self, cr: Reg) -> Self {
        self.push(Inst {
            op: Opcode::Bc,
            defs: vec![],
            uses: vec![cr],
            mem: None,
        })
    }

    /// Finish and return the program.
    pub fn finish(mut self) -> Program {
        self.seal();
        Program {
            blocks: self.blocks,
            kind: self.kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::build_trace_graph;
    use crate::latency::LatencyModel;

    #[test]
    fn builds_two_block_trace() {
        let p = ProgramBuilder::new_trace()
            .block("A")
            .load(Reg::Gpr(1), "x", Reg::Gpr(9), 0)
            .cmp(Reg::Cr(0), Reg::Gpr(1))
            .branch_on(Reg::Cr(0))
            .block("B")
            .add(Reg::Gpr(2), Reg::Gpr(1), Reg::Gpr(1))
            .finish();
        assert_eq!(p.blocks.len(), 2);
        assert_eq!(p.num_insts(), 4);
        let g = build_trace_graph(&p, &LatencyModel::restricted_01());
        assert_eq!(g.len(), 4);
        // load -> add crosses the block boundary.
        assert!(g
            .out_edges(asched_graph::NodeId(0))
            .iter()
            .any(|e| e.dst == asched_graph::NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "open a block")]
    fn instruction_without_block_panics() {
        let _ = ProgramBuilder::new_trace().li(Reg::Gpr(1));
    }

    #[test]
    fn roundtrips_through_text() {
        let p = ProgramBuilder::new_loop()
            .block("L")
            .load_update(Reg::Gpr(2), "x", Reg::Gpr(1), 4)
            .mul(Reg::Gpr(3), Reg::Gpr(2), Reg::Gpr(3))
            .store_update("y", Reg::Gpr(4), 4, Reg::Gpr(3))
            .branch_on(Reg::Cr(0))
            .finish();
        let text = crate::print::format_program(&p);
        let p2 = crate::parse::parse_program(&text).unwrap();
        assert_eq!(p, p2);
    }
}
