//! Loop transformations that enlarge the scheduler's scope.
//!
//! The paper's algorithms act on whatever loop body the earlier compiler
//! phases hand them; classic phases that enlarge that body interact
//! directly with anticipatory scheduling:
//!
//! * [`unroll`] — replicate a single-block loop body `factor` times
//!   (intermediate exit branches dropped, the final one kept). The
//!   scheduler then sees `factor` iterations' worth of instructions in
//!   one block, trading code size for cross-iteration overlap that no
//!   longer depends on the hardware window.

use crate::inst::Inst;
use crate::program::{BasicBlock, Program, ProgramKind};
use crate::reg::Reg;
use std::collections::HashSet;

/// Unroll a single-block loop `factor` times.
///
/// The body is replicated; exit branches of all but the last copy are
/// removed (the usual divisible-trip-count convention — prologue/epilogue
/// handling is orthogonal to scheduling and out of scope). Registers are
/// *not* renamed: recurrences and storage reuse carry over verbatim, so
/// the dependence analysis sees exactly the constraints the original
/// loop had.
///
/// # Panics
///
/// Panics if the program is not a single-block loop or `factor == 0`.
pub fn unroll(prog: &Program, factor: u32) -> Program {
    assert!(factor >= 1, "unroll factor must be positive");
    assert_eq!(prog.kind, ProgramKind::Loop, "unroll expects a loop");
    assert_eq!(prog.blocks.len(), 1, "unroll expects a single-block loop");
    let body = &prog.blocks[0];
    let mut insts = Vec::with_capacity(body.len() * factor as usize);
    for copy in 0..factor {
        let last_copy = copy + 1 == factor;
        for inst in &body.insts {
            if inst.op.is_branch() && !last_copy {
                continue; // interior exits dropped
            }
            insts.push(inst.clone());
        }
    }
    Program::new_loop(vec![BasicBlock::new(body.label.clone(), insts)])
}

/// Rename *killed* register values to fresh registers, eliminating the
/// anti/output dependences that register reuse creates within blocks.
///
/// A value is safely renameable when its defining instruction is
/// followed, within the same block, by another definition of the same
/// register: everything between the two definitions is that value's
/// entire live range, so giving it a fresh name cannot change program
/// semantics (the reconciliation the paper's Related Work attributes to
/// the PL.8-style allocators [2, 8] — encode only the *true* constraints
/// in the dependence graph).
///
/// Fresh names come from the general-purpose registers the program never
/// mentions; renaming stops silently when the pool runs dry (the
/// remaining reuse simply keeps its dependences). Condition and float
/// registers are left untouched.
pub fn rename_locals(prog: &Program) -> Program {
    // Pool of unused GPRs.
    let mut used: HashSet<Reg> = HashSet::new();
    for (_, _, inst) in prog.iter_insts() {
        for &r in inst.defs.iter().chain(inst.uses.iter()) {
            used.insert(r);
        }
        if let Some(m) = &inst.mem {
            used.insert(m.base);
        }
    }
    let mut pool: Vec<Reg> = (0..32u8)
        .map(Reg::Gpr)
        .filter(|r| !used.contains(r))
        .collect();
    pool.reverse(); // pop from the low end last

    let mut blocks = Vec::with_capacity(prog.blocks.len());
    for block in &prog.blocks {
        let mut insts: Vec<Inst> = block.insts.clone();
        // Walk definitions in order; for each def of r with a LATER def
        // of r in the same block, rename this def (and its uses up to
        // that later def) to a fresh register.
        let n = insts.len();
        for i in 0..n {
            let defs: Vec<Reg> = insts[i].defs.clone();
            for r in defs {
                if !matches!(r, Reg::Gpr(_)) {
                    continue;
                }
                // Update-form base registers carry values across
                // instructions in ways the address math depends on; the
                // def must match a plain destination to be renamed.
                if insts[i].mem.as_ref().is_some_and(|m| m.base == r) {
                    continue;
                }
                let Some(kill) = ((i + 1)..n).find(|&j| insts[j].defs.contains(&r)) else {
                    continue; // live out of the block: not provably dead
                };
                // If the killing instruction is an update-form memory op
                // with r as its base, the old value is consumed *by the
                // same instruction that redefines it* — renaming the base
                // would break the update-form invariant (base must be
                // both use and def). Skip this opportunity.
                if insts[kill].op.is_update()
                    && insts[kill].mem.as_ref().is_some_and(|m| m.base == r)
                {
                    continue;
                }
                let Some(fresh) = pool.pop() else {
                    return Program {
                        blocks: {
                            blocks.push(BasicBlock::new(block.label.clone(), insts));
                            let mut done = blocks;
                            done.extend(prog.blocks[done.len()..].iter().cloned());
                            done
                        },
                        kind: prog.kind,
                    };
                };
                // Rename the def…
                for d in insts[i].defs.iter_mut() {
                    if *d == r {
                        *d = fresh;
                    }
                }
                // …and every use of r up to (and including the uses of)
                // the killing instruction.
                for inst in insts.iter_mut().take(kill + 1).skip(i + 1) {
                    for u in inst.uses.iter_mut() {
                        if *u == r {
                            *u = fresh;
                        }
                    }
                    if let Some(m) = inst.mem.as_mut() {
                        if m.base == r {
                            m.base = fresh;
                        }
                    }
                }
            }
        }
        blocks.push(BasicBlock::new(block.label.clone(), insts));
    }
    Program {
        blocks,
        kind: prog.kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::build_loop_graph;
    use crate::latency::LatencyModel;
    use crate::parse::parse_program;

    fn fig3() -> Program {
        parse_program(
            r#"
            loop {
              block CL18 {
                l4u  gr6, gr7 = x[gr7, 4]
                st4u gr5, y[gr5, 4] = gr0
                c4   cr1 = gr6, 0
                mul  gr0 = gr6, gr0
                bt   cr1
              }
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn unroll_replicates_and_drops_interior_branches() {
        let p = fig3();
        let u = unroll(&p, 3);
        assert_eq!(u.blocks.len(), 1);
        // 3 copies of 5 instructions minus 2 dropped interior branches.
        assert_eq!(u.num_insts(), 13);
        let branches = u.blocks[0]
            .insts
            .iter()
            .filter(|i| i.op.is_branch())
            .count();
        assert_eq!(branches, 1);
        assert!(u.blocks[0].insts.last().unwrap().op.is_branch());
    }

    #[test]
    fn unroll_by_one_is_identity() {
        let p = fig3();
        assert_eq!(unroll(&p, 1), p);
    }

    #[test]
    fn unrolled_graph_preserves_recurrences() {
        // The gr0 recurrence survives unrolling: the unrolled body's
        // last multiply feeds the next kernel iteration.
        let p = fig3();
        let u = unroll(&p, 2);
        let g = build_loop_graph(&u, &LatencyModel::fig3());
        assert!(g.has_loop_carried());
        // Two multiplies; the first feeds the second within the body,
        // the second feeds the first across iterations.
        let muls: Vec<_> = g.node_ids().filter(|&n| g.node(n).label == "mul").collect();
        assert_eq!(muls.len(), 2);
        assert!(g
            .out_edges(muls[0])
            .iter()
            .any(|e| e.dst == muls[1] && e.distance == 0 && e.latency == 4));
        assert!(g
            .out_edges(muls[1])
            .iter()
            .any(|e| e.dst == muls[0] && e.distance == 1 && e.latency == 4));
    }

    #[test]
    fn rename_locals_breaks_reuse() {
        // gr1 is defined, consumed, then redefined: the first value gets
        // a fresh name, removing the anti and output dependences.
        let p = parse_program(
            r#"
            trace {
              block A {
                l4  gr1 = a[gr9]
                add gr2 = gr1, gr1
                l4  gr1 = b[gr9]
                add gr3 = gr1, gr1
              }
            }
            "#,
        )
        .unwrap();
        let r = rename_locals(&p);
        let g_before = crate::deps::build_trace_graph(&p, &LatencyModel::restricted_01());
        let g_after = crate::deps::build_trace_graph(&r, &LatencyModel::restricted_01());
        use asched_graph::DepKind;
        let false_deps = |g: &asched_graph::DepGraph| {
            g.edges()
                .filter(|e| matches!(e.kind, DepKind::Anti | DepKind::Output))
                .count()
        };
        assert!(false_deps(&g_before) > 0);
        assert_eq!(false_deps(&g_after), 0);
        // The second load's consumer still reads the SECOND value.
        let l2 = asched_graph::NodeId(2);
        let a2 = asched_graph::NodeId(3);
        assert!(g_after.out_edges(l2).iter().any(|e| e.dst == a2));
    }

    #[test]
    fn rename_locals_keeps_live_out_values() {
        // gr1 is never redefined: it may be live out, so it keeps its
        // name.
        let p = parse_program(
            "trace {
 block A {
 l4 gr1 = a[gr9]
 add gr2 = gr1, gr1
 }
}",
        )
        .unwrap();
        let r = rename_locals(&p);
        assert_eq!(p, r);
    }

    /// Regression (found in code review): when the *killing* def is an
    /// update-form op using r as its base, renaming would break the
    /// update-form invariant (base must appear among defs). The value
    /// must keep its name.
    #[test]
    fn rename_locals_skips_update_form_kills() {
        let p = parse_program(
            r#"
            trace {
              block A {
                li  gr1 = 0
                add gr2 = gr1, gr1
                l4u gr3, gr1 = a[gr1, 4]
              }
            }
            "#,
        )
        .unwrap();
        let r = rename_locals(&p);
        assert_eq!(p, r, "no rename opportunity here");
        // And the output still round-trips through the parser.
        let text = crate::print::format_program(&r);
        assert_eq!(crate::parse::parse_program(&text).unwrap(), r);
    }

    #[test]
    fn rename_locals_skips_update_bases() {
        // The update def of gr1 is the address chain; untouched even
        // though gr1 is redefined later.
        let p = parse_program(
            r#"
            trace {
              block A {
                l4u gr2, gr1 = a[gr1, 4]
                li  gr1 = 0
              }
            }
            "#,
        )
        .unwrap();
        let r = rename_locals(&p);
        assert_eq!(r.blocks[0].insts[0].defs, p.blocks[0].insts[0].defs);
    }

    #[test]
    fn rename_improves_schedulable_parallelism() {
        // Two independent computations forced through one register: after
        // renaming they schedule tighter on the lookahead model.
        let p = parse_program(
            r#"
            trace {
              block A {
                l4  gr1 = a[gr9]
                mul gr2 = gr1, gr1
                l4  gr1 = b[gr9]
                mul gr3 = gr1, gr1
                add gr4 = gr2, gr3
              }
            }
            "#,
        )
        .unwrap();
        let model = LatencyModel::fig3();
        let g1 = crate::deps::build_trace_graph(&p, &model);
        let g2 = crate::deps::build_trace_graph(&rename_locals(&p), &model);
        let cp1 = asched_graph::critical_path_length(&g1, &g1.all_nodes()).unwrap();
        let cp2 = asched_graph::critical_path_length(&g2, &g2.all_nodes()).unwrap();
        assert!(cp2 <= cp1, "renaming can only shorten the critical path");
    }

    #[test]
    #[should_panic(expected = "single-block loop")]
    fn unroll_rejects_traces() {
        let p = parse_program("trace {\n block A {\n li gr1 = 0\n }\n}").unwrap();
        let mut p2 = p;
        p2.kind = ProgramKind::Loop;
        p2.blocks.push(p2.blocks[0].clone());
        unroll(&p2, 2);
    }
}
