//! Dependence analysis: from programs to `<latency, distance>` graphs.
//!
//! Nodes are created in program order, so `NodeId(k)` is the `k`-th
//! instruction of the program. Edges:
//!
//! * **register flow** — last def of `r` → each use, with the producer's
//!   result latency (the `update` latency for the base-register def of
//!   update-form memory ops);
//! * **register anti/output** — uses → next def, prior def → next def,
//!   latency 0;
//! * **memory** — conservative disambiguation: accesses to different
//!   regions never alias; same region, same base register *version* and
//!   different constant offsets never alias; everything else does.
//!   Aliasing pairs involving a store get a [`DepKind::Memory`] edge
//!   (store→load with the store-forwarding latency, otherwise latency
//!   0);
//! * **control** — every instruction precedes its block's terminating
//!   branch (paper Section 2.4: the compiler's output schedule keeps the
//!   branch last).
//!
//! [`build_loop_graph`] additionally runs a second virtual iteration and
//! records every constraint from iteration `k` to iteration `k+1` as a
//! `distance = 1` edge — exactly the `<latency, distance>` labelling of
//! paper Section 5. Cross-iteration memory accesses through an *updated*
//! base register are assumed independent (induction stepping); accesses
//! through an un-updated base alias conservatively.

use crate::inst::Inst;
use crate::latency::LatencyModel;
use crate::program::Program;
use crate::reg::Reg;
use asched_graph::{BlockId, DepGraph, DepKind, NodeData, NodeId};
use std::collections::HashSet;

/// Dependence graph of a trace (loop-carried edges omitted even if the
/// program is a loop).
pub fn build_trace_graph(prog: &Program, model: &LatencyModel) -> DepGraph {
    build(prog, model, false)
}

/// Dependence graph of a loop body, including `distance = 1`
/// loop-carried edges. The program's `kind` should be
/// [`crate::ProgramKind::Loop`], but this is not enforced (a trace
/// analysed as a loop simply treats the whole trace as the repeating
/// body).
pub fn build_loop_graph(prog: &Program, model: &LatencyModel) -> DepGraph {
    build(prog, model, true)
}

/// The node id of instruction `inst_idx` of block `block_idx` (nodes are
/// created in program order).
pub fn node_of(prog: &Program, block_idx: usize, inst_idx: usize) -> NodeId {
    let before: usize = prog.blocks[..block_idx].iter().map(|b| b.len()).sum();
    NodeId((before + inst_idx) as u32)
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct Site {
    node: NodeId,
    /// 0 = first (real) iteration, 1 = second (virtual) iteration.
    epoch: u8,
}

struct MemSite {
    node: NodeId,
    epoch: u8,
    region: String,
    base: Reg,
    base_version: u32,
    offset: i64,
    is_store: bool,
}

struct Builder<'a> {
    g: DepGraph,
    model: &'a LatencyModel,
    seen: HashSet<(NodeId, NodeId, u32, u32, DepKind)>,
    last_def: Vec<Option<Site>>,
    uses_since: Vec<Vec<Site>>,
    reg_version: Vec<u32>,
    mem_ops: Vec<MemSite>,
    /// Current pass: 0 = real iteration, 1 = virtual second iteration.
    epoch: u8,
    /// Latency of the value each node defined into each register.
    def_lat_of: Vec<Vec<u32>>,
}

impl Builder<'_> {
    fn edge(&mut self, src: Site, dst: NodeId, latency: u32, kind: DepKind) {
        let distance = if src.epoch == 0 && self.epoch == 1 {
            1
        } else {
            0
        };
        if src.epoch == 1 && self.epoch == 0 {
            unreachable!("edges never point backwards in epochs");
        }
        // In the second pass, intra-epoch edges repeat the first pass.
        if self.epoch == 1 && distance == 0 {
            return;
        }
        if src.node == dst && distance == 0 {
            return;
        }
        if self.seen.insert((src.node, dst, latency, distance, kind)) {
            self.g.add_edge(src.node, dst, latency, distance, kind);
        }
    }

    fn def_latency(&self, inst: &Inst, r: Reg) -> u32 {
        if inst.op.is_update() {
            if let Some(m) = &inst.mem {
                if m.base == r {
                    return self.model.update;
                }
            }
        }
        self.model.latency(inst.op)
    }

    /// Process one instruction occurrence.
    fn visit(&mut self, inst: &Inst, node: NodeId) {
        let here = Site {
            node,
            epoch: self.epoch,
        };
        // Uses first: a same-instruction use reads the previous value.
        for r in inst.all_uses() {
            if let Some(d) = self.last_def[r.index()] {
                let lat = self.def_lat_of[d.node.index()][r.index()];
                self.edge(d, node, lat, DepKind::Data);
            }
            self.uses_since[r.index()].push(here);
        }
        // Memory.
        if let (Some(m), true) = (&inst.mem, inst.op.is_load() || inst.op.is_store()) {
            let site = MemSite {
                node,
                epoch: self.epoch,
                region: m.region.clone(),
                base: m.base,
                base_version: self.reg_version[m.base.index()],
                offset: m.offset,
                is_store: inst.op.is_store(),
            };
            for k in 0..self.mem_ops.len() {
                let prior = &self.mem_ops[k];
                if !prior.is_store && !site.is_store {
                    continue; // load-load never conflicts
                }
                if !alias(prior, &site) {
                    continue;
                }
                let lat = if prior.is_store && !site.is_store {
                    self.model.store // store-to-load forwarding
                } else {
                    0
                };
                let src = Site {
                    node: prior.node,
                    epoch: prior.epoch,
                };
                self.edge(src, node, lat, DepKind::Memory);
            }
            self.mem_ops.push(site);
        }
        // Defs: anti and output edges, then update the state.
        for &r in &inst.defs {
            let uses = std::mem::take(&mut self.uses_since[r.index()]);
            for u in uses {
                // Skip only the truly intra-instruction case (same node,
                // same iteration); a same-node use from the *previous*
                // iteration is a legitimate distance-1 anti dependence.
                if u.node != node || u.epoch != here.epoch {
                    self.edge(u, node, 0, DepKind::Anti);
                }
            }
            if let Some(d) = self.last_def[r.index()] {
                if d.node != node || d.epoch != here.epoch {
                    self.edge(d, node, 0, DepKind::Output);
                }
            }
            self.last_def[r.index()] = Some(here);
            self.def_lat_of[node.index()][r.index()] = self.def_latency(inst, r);
            self.reg_version[r.index()] += 1;
        }
    }
}

fn alias(a: &MemSite, b: &MemSite) -> bool {
    if a.region != b.region {
        return false;
    }
    if a.base == b.base {
        if a.base_version == b.base_version {
            // Same address expression: alias iff same offset.
            return a.offset == b.offset;
        }
        // The base was redefined between the accesses. Only the
        // *cross-iteration* case is the induction-stepping pattern the
        // module docs allow us to treat as independent; within one
        // iteration a redefinition (`add gr1 = gr1, gr3`,
        // `mr gr1 = gr9`, …) can point anywhere, so alias
        // conservatively.
        return a.epoch == b.epoch;
    }
    // Same region through different bases: conservative.
    true
}

fn build(prog: &Program, model: &LatencyModel, loop_carried: bool) -> DepGraph {
    let mut g = DepGraph::new();
    // Create all nodes in program order.
    let mut branch_of_block: Vec<Option<NodeId>> = vec![None; prog.blocks.len()];
    for (bi, block) in prog.blocks.iter().enumerate() {
        for (ii, inst) in block.insts.iter().enumerate() {
            let id = g.add_node(NodeData {
                label: inst.label(),
                exec_time: model.exec_time(inst.op),
                class: model.class(inst.op),
                block: BlockId(bi as u32),
                source_pos: ii as u32,
            });
            if inst.op.is_branch() {
                branch_of_block[bi] = Some(id);
            }
        }
    }

    let n = g.len();
    let mut b = Builder {
        g,
        model,
        seen: HashSet::new(),
        last_def: vec![None; Reg::NUM_INDICES],
        uses_since: vec![Vec::new(); Reg::NUM_INDICES],
        reg_version: vec![0; Reg::NUM_INDICES],
        mem_ops: Vec::new(),
        epoch: 0,
        def_lat_of: vec![vec![0; Reg::NUM_INDICES]; n],
    };

    let passes: u8 = if loop_carried { 2 } else { 1 };
    for epoch in 0..passes {
        b.epoch = epoch;
        for (bi, block) in prog.blocks.iter().enumerate() {
            for (ii, inst) in block.insts.iter().enumerate() {
                let node = node_of(prog, bi, ii);
                b.visit(inst, node);
            }
        }
    }

    // Control dependences: every instruction precedes its block's branch
    // (distance 0 only — iterations are ordered by data, not control, in
    // the lookahead model).
    for (bi, block) in prog.blocks.iter().enumerate() {
        if let Some(br) = branch_of_block[bi] {
            for (ii, _inst) in block.insts.iter().enumerate() {
                let id = node_of(prog, bi, ii);
                if id != br {
                    let key = (id, br, 0u32, 0u32, DepKind::Control);
                    if b.seen.insert(key) {
                        b.g.add_edge(id, br, 0, 0, DepKind::Control);
                    }
                }
            }
        }
    }

    b.g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    /// The Figure 3 partial-products loop, straight from assembly text.
    pub(crate) fn fig3_program() -> Program {
        parse_program(
            r#"
            loop {
              block CL18 {
                l4u  gr6, gr7 = x[gr7, 4]
                st4u gr5, y[gr5, 4] = gr0
                c4   cr1 = gr6
                mul  gr0 = gr6, gr0
                bt   cr1
              }
            }
            "#,
        )
        .expect("fig3 parses")
    }

    #[test]
    fn fig3_loop_graph_matches_paper() {
        let prog = fig3_program();
        let g = build_loop_graph(&prog, &LatencyModel::fig3());
        let l = g.find("l4u").unwrap();
        let s = g.find("st4u").unwrap();
        let c = g.find("c4").unwrap();
        let m = g.find("mul").unwrap();
        let bt = g.find("bt").unwrap();

        let has = |src, dst, lat, dist| {
            g.out_edges(src)
                .iter()
                .any(|e| e.dst == dst && e.latency == lat && e.distance == dist)
        };
        // Loop-independent data dependences.
        assert!(has(l, c, 1, 0), "gr6: load -> compare");
        assert!(has(l, m, 1, 0), "gr6: load -> multiply");
        assert!(has(c, bt, 1, 0), "cr1: compare -> branch");
        assert!(has(s, m, 0, 0), "gr0 anti: store -> multiply");
        // Loop-carried dependences (<latency, distance> labels).
        assert!(has(m, s, 4, 1), "gr0: multiply -> next store <4,1>");
        assert!(has(m, m, 4, 1), "gr0: multiply self <4,1>");
        assert!(has(l, l, 1, 1), "gr7 update self <1,1>");
        assert!(has(s, s, 1, 1), "gr5 update self <1,1>");
        // Control dependences onto the branch.
        assert!(has(l, bt, 0, 0));
        assert!(has(s, bt, 0, 0));
        assert!(has(m, bt, 0, 0));
        // Memory: x and y are different regions — no memory edges.
        assert!(!g.edges().any(|e| e.kind == DepKind::Memory));
    }

    #[test]
    fn trace_graph_has_no_loop_carried_edges() {
        let prog = fig3_program();
        let g = build_trace_graph(&prog, &LatencyModel::fig3());
        assert!(!g.has_loop_carried());
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn flow_anti_output_within_block() {
        let prog = parse_program(
            r#"
            trace {
              block A {
                li  gr1 = 7
                add gr2 = gr1, gr1
                li  gr1 = 9
              }
            }
            "#,
        )
        .unwrap();
        let g = build_trace_graph(&prog, &LatencyModel::restricted_01());
        let li1 = NodeId(0);
        let add = NodeId(1);
        let li2 = NodeId(2);
        let kinds: Vec<(NodeId, NodeId, DepKind)> =
            g.edges().map(|e| (e.src, e.dst, e.kind)).collect();
        assert!(kinds.contains(&(li1, add, DepKind::Data)));
        assert!(kinds.contains(&(add, li2, DepKind::Anti)));
        assert!(kinds.contains(&(li1, li2, DepKind::Output)));
    }

    #[test]
    fn memory_disambiguation() {
        let prog = parse_program(
            r#"
            trace {
              block A {
                st4 a[gr1] = gr2
                l4  gr3 = a[gr1]
                l4  gr4 = a[gr1, 8]
                l4  gr5 = b[gr1]
                st4 a[gr6] = gr2
              }
            }
            "#,
        )
        .unwrap();
        let g = build_trace_graph(&prog, &LatencyModel::restricted_01());
        let st1 = NodeId(0);
        let ld_same = NodeId(1);
        let ld_off = NodeId(2);
        let ld_other = NodeId(3);
        let st2 = NodeId(4);
        let has = |s, d| {
            g.out_edges(s)
                .iter()
                .any(|e: &asched_graph::DepEdge| e.dst == d)
        };
        assert!(has(st1, ld_same), "same address: store -> load");
        assert!(!has(st1, ld_off), "same base, different offset: no alias");
        assert!(!has(st1, ld_other), "different region: no alias");
        assert!(has(st1, st2), "different base, same region: conservative");
        // load -> store anti through the conservative pair.
        assert!(has(ld_same, st2));
        assert!(has(ld_off, st2));
        assert!(!has(ld_other, st2));
    }

    #[test]
    fn cross_block_register_flow() {
        let prog = parse_program(
            r#"
            trace {
              block A {
                l4 gr1 = v[gr9]
              }
              block B {
                add gr2 = gr1, gr1
              }
            }
            "#,
        )
        .unwrap();
        let g = build_trace_graph(&prog, &LatencyModel::restricted_01());
        assert!(g
            .out_edges(NodeId(0))
            .iter()
            .any(|e| e.dst == NodeId(1) && e.latency == 1));
        assert_eq!(g.node(NodeId(1)).block, BlockId(1));
    }

    #[test]
    fn induction_memory_heuristic_across_iterations() {
        // A store through an induction-updated base: successive
        // iterations hit different addresses, so no cross-iteration
        // memory self-dependence is generated.
        let prog = parse_program(
            r#"
            loop {
              block L {
                st4u gr1, a[gr1, 4] = gr2
              }
            }
            "#,
        )
        .unwrap();
        let g = build_loop_graph(&prog, &LatencyModel::restricted_01());
        assert!(!g.edges().any(|e| e.kind == DepKind::Memory));
        // The register self-dependences on the base remain.
        assert!(g
            .out_edges(NodeId(0))
            .iter()
            .any(|e| e.dst == NodeId(0) && e.distance == 1 && e.kind == DepKind::Data));
    }

    /// Regression (found in code review): a base redefined by ordinary
    /// arithmetic within one iteration can point anywhere — the two
    /// stores must stay ordered.
    #[test]
    fn intra_block_base_redefinition_aliases_conservatively() {
        let prog = parse_program(
            r#"
            trace {
              block A {
                st4 a[gr1] = gr2
                add gr1 = gr1, gr3
                st4 a[gr1] = gr4
              }
            }
            "#,
        )
        .unwrap();
        let g = build_trace_graph(&prog, &LatencyModel::restricted_01());
        assert!(
            g.out_edges(NodeId(0))
                .iter()
                .any(|e| e.dst == NodeId(2) && e.kind == DepKind::Memory),
            "store-store order must be preserved across a non-induction base change"
        );
    }

    #[test]
    fn same_address_store_aliases_across_iterations() {
        // A store to a *fixed* address aliases itself (and the load)
        // every iteration: conservative distance-1 memory edges.
        let prog = parse_program(
            r#"
            loop {
              block L {
                l4  gr2 = a[gr1]
                st4 a[gr1] = gr2
              }
            }
            "#,
        )
        .unwrap();
        let g = build_loop_graph(&prog, &LatencyModel::restricted_01());
        let ld = NodeId(0);
        let st = NodeId(1);
        // Intra-iteration load -> store (anti direction, Memory kind).
        assert!(g
            .out_edges(ld)
            .iter()
            .any(|e| e.dst == st && e.distance == 0 && e.kind == DepKind::Memory));
        // Cross-iteration store -> load and store -> store.
        assert!(g
            .out_edges(st)
            .iter()
            .any(|e| e.dst == ld && e.distance == 1 && e.kind == DepKind::Memory));
        assert!(g
            .out_edges(st)
            .iter()
            .any(|e| e.dst == st && e.distance == 1 && e.kind == DepKind::Memory));
    }

    #[test]
    fn update_form_uses_update_latency() {
        let prog = fig3_program();
        let g = build_loop_graph(&prog, &LatencyModel::fig3());
        let l = g.find("l4u").unwrap();
        // gr7 self-dependence carries the update latency (1), not the
        // load latency.
        let self_edge = g
            .out_edges(l)
            .iter()
            .find(|e| e.dst == l && e.distance == 1)
            .copied()
            .unwrap();
        assert_eq!(self_edge.latency, 1);
    }
}
