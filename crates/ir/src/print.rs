//! Assembly-text printing (round-trips with the parser).

use crate::program::{Program, ProgramKind};
use asched_graph::NodeId;
use std::fmt::Write;

/// Render a program in the textual format [`crate::parse_program`]
/// accepts.
pub fn format_program(prog: &Program) -> String {
    let mut s = String::new();
    let kind = match prog.kind {
        ProgramKind::Trace => "trace",
        ProgramKind::Loop => "loop",
    };
    writeln!(s, "{kind} {{").unwrap();
    for b in &prog.blocks {
        writeln!(s, "  block {} {{", b.label).unwrap();
        for i in &b.insts {
            writeln!(s, "    {i}").unwrap();
        }
        writeln!(s, "  }}").unwrap();
    }
    writeln!(s, "}}").unwrap();
    s
}

/// Render one block of a program in a *scheduled* order, given the node
/// order produced by a scheduler (nodes are global program-order
/// indices; only this block's instructions are printed, in schedule
/// order).
pub fn format_scheduled_block(prog: &Program, block_idx: usize, order: &[NodeId]) -> String {
    let before: usize = prog.blocks[..block_idx].iter().map(|b| b.len()).sum();
    let len = prog.blocks[block_idx].len();
    let mut s = String::new();
    writeln!(s, "block {} {{", prog.blocks[block_idx].label).unwrap();
    for &id in order {
        let k = id.index();
        if k >= before && k < before + len {
            writeln!(s, "  {}", prog.blocks[block_idx].insts[k - before]).unwrap();
        }
    }
    writeln!(s, "}}").unwrap();
    s
}

/// The *serviceability* mapping (paper Section 1: instructions are never
/// moved across block boundaries, "making it easier to map from an
/// instruction location to the source code location"): given a scheduled
/// node, return its home block label and its original position within
/// that block.
pub fn source_location(prog: &Program, id: NodeId) -> (&str, usize) {
    let mut before = 0usize;
    for b in &prog.blocks {
        if id.index() < before + b.len() {
            return (&b.label, id.index() - before);
        }
        before += b.len();
    }
    panic!("node {id} outside the program");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    const FIG3: &str = r#"
loop {
  block CL18 {
    l4u gr6, gr7 = x[gr7, 4]
    st4u gr5, y[gr5, 4] = gr0
    c4 cr1 = gr6
    mul gr0 = gr6, gr0
    bt cr1
  }
}
"#;

    #[test]
    fn print_parse_roundtrip() {
        let p1 = parse_program(FIG3).unwrap();
        let text = format_program(&p1);
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn scheduled_block_reorders() {
        let p = parse_program(FIG3).unwrap();
        // Schedule 2 of Figure 3: L ST M C4 BT.
        let order = [0u32, 1, 3, 2, 4].map(NodeId);
        let out = format_scheduled_block(&p, 0, &order);
        let lines: Vec<&str> = out.lines().map(str::trim).collect();
        assert!(lines[1].starts_with("l4u"));
        assert!(lines[2].starts_with("st4u"));
        assert!(lines[3].starts_with("mul"));
        assert!(lines[4].starts_with("c4"));
        assert!(lines[5].starts_with("bt"));
    }

    #[test]
    fn source_location_maps_back() {
        let p = parse_program(FIG3).unwrap();
        assert_eq!(source_location(&p, NodeId(0)), ("CL18", 0));
        assert_eq!(source_location(&p, NodeId(4)), ("CL18", 4));
        let p2 =
            parse_program("trace {\n block A {\n li gr1 = 1\n }\n block B {\n li gr2 = 2\n }\n}")
                .unwrap();
        assert_eq!(source_location(&p2, NodeId(1)), ("B", 0));
    }

    #[test]
    #[should_panic(expected = "outside the program")]
    fn source_location_rejects_foreign_nodes() {
        let p = parse_program("trace {\n block A {\n li gr1 = 1\n }\n}").unwrap();
        source_location(&p, NodeId(9));
    }

    #[test]
    fn foreign_nodes_filtered() {
        let p =
            parse_program("trace {\n block A {\n li gr1 = 1\n }\n block B {\n li gr2 = 2\n }\n}")
                .unwrap();
        let out = format_scheduled_block(&p, 1, &[NodeId(1), NodeId(0)]);
        assert!(out.contains("gr2"));
        assert!(!out.contains("gr1 ="));
    }
}
