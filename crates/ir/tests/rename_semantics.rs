//! Semantic preservation of `rename_locals`, checked structurally: the
//! register *flow* dependences (which instruction's value each use
//! reads) must be exactly the same before and after renaming — renaming
//! may only delete anti/output dependences, never change dataflow.

use asched_graph::DepKind;
use asched_ir::transform::rename_locals;
use asched_ir::{build_loop_graph, build_trace_graph, parse_program, LatencyModel};

fn flow_edges(g: &asched_graph::DepGraph) -> Vec<(u32, u32, u32, u32)> {
    let mut v: Vec<(u32, u32, u32, u32)> = g
        .edges()
        .filter(|e| e.kind == DepKind::Data)
        .map(|e| (e.src.0, e.dst.0, e.latency, e.distance))
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Count false (anti/output) dependences; `li_only` restricts to
/// distance-0 edges — renaming static names inside a loop body cannot
/// remove *cross-iteration* storage reuse (that is modulo variable
/// expansion's job), only the intra-iteration kind.
fn false_edges(g: &asched_graph::DepGraph, li_only: bool) -> usize {
    g.edges()
        .filter(|e| matches!(e.kind, DepKind::Anti | DepKind::Output))
        .filter(|e| !li_only || e.distance == 0)
        .count()
}

#[test]
fn renaming_preserves_dataflow_on_random_programs() {
    use asched_workloads::{random_program, ProgParams};
    for seed in 0..40u64 {
        for regs in [3u8, 5, 8] {
            let p = random_program(&ProgParams {
                blocks: 2,
                insts_per_block: 12,
                regs,
                mem_fraction: 0.2,
                with_branches: seed % 2 == 0,
                seed: seed * 7 + regs as u64,
                ..ProgParams::default()
            });
            let r = rename_locals(&p);
            let model = LatencyModel::fig3();
            let g1 = build_trace_graph(&p, &model);
            let g2 = build_trace_graph(&r, &model);
            assert_eq!(
                flow_edges(&g1),
                flow_edges(&g2),
                "seed {seed} regs {regs}: dataflow changed"
            );
            assert!(
                false_edges(&g2, false) <= false_edges(&g1, false),
                "seed {seed} regs {regs}: renaming added false deps"
            );
        }
    }
}

#[test]
fn renaming_preserves_dataflow_on_loops() {
    // Loop bodies: live-around values must keep their names, so the
    // loop-carried flow edges survive untouched as well.
    let p = parse_program(
        r#"
        loop {
          block L {
            l4u gr2, gr1 = x[gr1, 4]
            mul gr3 = gr2, gr2
            add gr3 = gr3, gr9
            st4u gr5, y[gr5, 4] = gr3
            mul gr3 = gr9, gr9
            add gr6 = gr6, gr3
            c4  cr1 = gr1, 0
            bt  cr1
          }
        }
        "#,
    )
    .unwrap();
    let r = rename_locals(&p);
    let model = LatencyModel::fig3();
    let g1 = build_loop_graph(&p, &model);
    let g2 = build_loop_graph(&r, &model);
    assert_eq!(flow_edges(&g1), flow_edges(&g2));
    assert!(
        false_edges(&g2, true) < false_edges(&g1, true),
        "intra-iteration reuse of gr3 removed"
    );
}

#[test]
fn renaming_is_idempotent() {
    use asched_workloads::{random_program, ProgParams};
    for seed in 0..10u64 {
        let p = random_program(&ProgParams {
            blocks: 2,
            insts_per_block: 10,
            regs: 4,
            seed,
            ..ProgParams::default()
        });
        let once = rename_locals(&p);
        let twice = rename_locals(&once);
        assert_eq!(once, twice, "seed {seed}");
    }
}
