//! Parser robustness: arbitrary input must never panic — it either
//! parses or returns a located error.

use asched_ir::parse_program;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Totally arbitrary strings.
    #[test]
    fn arbitrary_strings_never_panic(s in ".{0,200}") {
        let _ = parse_program(&s);
    }

    /// Structured-ish inputs: balanced skeletons with random instruction
    /// lines, which reach much deeper into the operand grammar.
    #[test]
    fn skeleton_with_random_lines_never_panics(
        lines in proptest::collection::vec("[a-z0-9 =,\\[\\]()#%gr-]{0,40}", 0..10)
    ) {
        let mut src = String::from("trace {\n block A {\n");
        for l in &lines {
            src.push_str(l);
            src.push('\n');
        }
        src.push_str(" }\n}\n");
        let _ = parse_program(&src);
    }

    /// Raw byte soup, including invalid UTF-8: whatever a network peer
    /// could deliver (the serving layer lossily decodes request bodies
    /// before parsing, so the parser sees replacement characters, NULs,
    /// control bytes — all of it must come back as a located error).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_program(&text);
    }

    /// Byte soup wrapped in a well-formed program skeleton, so the
    /// garbage lands inside the instruction grammar rather than being
    /// rejected at the header.
    #[test]
    fn framed_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let inner = String::from_utf8_lossy(&bytes).replace(['{', '}'], "");
        let src = format!("trace {{\n block A {{\n{inner}\n }}\n}}\n");
        let _ = parse_program(&src);
    }

    /// Valid programs with mutated characters: parse or clean error.
    #[test]
    fn mutated_fig3_never_panics(pos in 0usize..260, c in proptest::char::any()) {
        let base = asched_workloads::fixtures::FIG3_ASM;
        let mut src: Vec<char> = base.chars().collect();
        if pos < src.len() {
            src[pos] = c;
        }
        let mutated: String = src.into_iter().collect();
        let _ = parse_program(&mutated);
    }
}
